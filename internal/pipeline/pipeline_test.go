package pipeline

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/fsim"
	"repro/internal/units"
)

func TestScenarioDerived(t *testing.T) {
	s := APSScan(33 * time.Millisecond)
	if s.Frames != 1440 {
		t.Fatalf("frames = %d", s.Frames)
	}
	// 2048*2048*2 = 8,388,608 bytes per frame; 1440 frames ~ 12.08 GB.
	if got := s.FrameSize.Bytes(); got != 8388608 {
		t.Fatalf("frame size = %v", got)
	}
	total := s.TotalBytes().Bytes()
	if math.Abs(total-1.2079595e10) > 1e6 {
		t.Fatalf("total = %v", total)
	}
	if got := s.GenerationEnd(); got != 1440*33*time.Millisecond {
		t.Fatalf("generation end = %v", got)
	}
	// ~254 MB/s at 33 ms/frame.
	rate := s.GenerationRate().BytesPerSecond()
	if math.Abs(rate-8388608/0.033) > 1 {
		t.Fatalf("generation rate = %v", rate)
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []Scenario{
		{Frames: 0, FrameSize: units.MB, FrameInterval: time.Second},
		{Frames: 1, FrameSize: 0, FrameInterval: time.Second},
		{Frames: 1, FrameSize: units.MB, FrameInterval: 0},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := Streaming(s, DefaultStreaming()); err == nil {
			t.Errorf("Streaming accepted case %d", i)
		}
		if _, err := FileBased(s, DefaultFileBased(1)); err == nil {
			t.Errorf("FileBased accepted case %d", i)
		}
	}
}

func TestStreamingGenerationBound(t *testing.T) {
	// Wire (1.5 GB/s) is far faster than generation (254 MB/s): the
	// stream finishes one frame-wire-time after the last frame.
	s := APSScan(33 * time.Millisecond)
	tl, err := Streaming(s, DefaultStreaming())
	if err != nil {
		t.Fatal(err)
	}
	genEnd := s.GenerationEnd()
	lag := tl.Completion - genEnd
	if lag <= 0 || lag > 50*time.Millisecond {
		t.Fatalf("streaming lag after generation = %v, want (0, 50ms]", lag)
	}
	if tl.FirstByteRemote <= 0 || tl.FirstByteRemote > 200*time.Millisecond {
		t.Fatalf("first byte = %v", tl.FirstByteRemote)
	}
	if tl.PostGeneration() != lag {
		t.Fatalf("PostGeneration = %v, want %v", tl.PostGeneration(), lag)
	}
}

func TestStreamingWireBound(t *testing.T) {
	// A slow wire (100 MB/s) below the generation rate (254 MB/s) makes
	// the transfer wire-bound: completion ~= total/rate.
	s := APSScan(33 * time.Millisecond)
	cfg := StreamingConfig{Rate: 100 * units.MBps, Startup: 0}
	tl, err := Streaming(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantWire := s.TotalBytes().Bytes() / 100e6
	if math.Abs(tl.Completion.Seconds()-(wantWire+0.033)) > 0.1 {
		t.Fatalf("completion = %v, want ~%v s", tl.Completion, wantWire)
	}
	if tl.Completion <= s.GenerationEnd() {
		t.Fatal("wire-bound stream cannot finish before generation")
	}
}

func TestStreamingValidate(t *testing.T) {
	s := APSScan(33 * time.Millisecond)
	if _, err := Streaming(s, StreamingConfig{Rate: 0}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Streaming(s, StreamingConfig{Rate: units.GBps, Startup: -time.Second}); err == nil {
		t.Error("negative startup accepted")
	}
}

func TestFileBasedAggregationBounds(t *testing.T) {
	s := APSScan(33 * time.Millisecond)
	for _, n := range []int{0, -1, 1441} {
		if _, err := FileBased(s, DefaultFileBased(n)); !errors.Is(err, ErrBadAggregation) {
			t.Errorf("n=%d: %v", n, err)
		}
	}
}

func TestFileBasedSmallFilesWorst(t *testing.T) {
	// Fig. 4's ordering at the high frame rate: streaming beats every
	// file-based variant, and 1,440 per-frame files is the worst case.
	s := APSScan(33 * time.Millisecond)
	stream, err := Streaming(s, DefaultStreaming())
	if err != nil {
		t.Fatal(err)
	}
	completions := map[int]time.Duration{}
	for _, n := range []int{1, 10, 144, 1440} {
		tl, err := FileBased(s, DefaultFileBased(n))
		if err != nil {
			t.Fatal(err)
		}
		completions[n] = tl.Completion
		if tl.Completion <= stream.Completion {
			t.Errorf("file-based n=%d (%v) beat streaming (%v)", n, tl.Completion, stream.Completion)
		}
	}
	if completions[1440] <= completions[144] || completions[144] <= completions[10] {
		t.Fatalf("small-file penalty ordering broken: %v", completions)
	}
}

func TestHeadline97PercentReduction(t *testing.T) {
	// The abstract's claim: up to 97% lower end-to-end completion at
	// high data rates. With the per-frame (1,440 file) staging the
	// reduction must land in the 90s.
	s := APSScan(33 * time.Millisecond)
	stream, err := Streaming(s, DefaultStreaming())
	if err != nil {
		t.Fatal(err)
	}
	file, err := FileBased(s, DefaultFileBased(1440))
	if err != nil {
		t.Fatal(err)
	}
	red := ReductionPercent(stream, file)
	if red < 90 || red > 99 {
		t.Fatalf("reduction = %.1f%%, want in [90, 99] (stream %v, file %v)",
			red, stream.Completion, file.Completion)
	}
}

func TestLowRateFileBasedCompetitive(t *testing.T) {
	// At the low frame rate (0.33 s/frame) with a single aggregated
	// file, the staged path is within ~15% of streaming — the paper's
	// "file-based methods remain competitive at lower data rates or with
	// large aggregated files".
	s := APSScan(330 * time.Millisecond)
	stream, err := Streaming(s, DefaultStreaming())
	if err != nil {
		t.Fatal(err)
	}
	file, err := FileBased(s, DefaultFileBased(1))
	if err != nil {
		t.Fatal(err)
	}
	red := ReductionPercent(stream, file)
	if red < 0 || red > 15 {
		t.Fatalf("low-rate aggregated reduction = %.1f%%, want [0, 15] (stream %v, file %v)",
			red, stream.Completion, file.Completion)
	}
}

func TestFileBasedFirstByteOrdering(t *testing.T) {
	// More aggregation delays the first byte: a single file cannot move
	// until the whole scan is staged, while per-frame files start almost
	// immediately.
	s := APSScan(33 * time.Millisecond)
	one, err := FileBased(s, DefaultFileBased(1))
	if err != nil {
		t.Fatal(err)
	}
	perFrame, err := FileBased(s, DefaultFileBased(1440))
	if err != nil {
		t.Fatal(err)
	}
	if perFrame.FirstByteRemote >= one.FirstByteRemote {
		t.Fatalf("first byte: per-frame %v should precede single-file %v",
			perFrame.FirstByteRemote, one.FirstByteRemote)
	}
	if one.FirstByteRemote <= s.GenerationEnd() {
		t.Fatalf("single file first byte %v must follow generation end %v",
			one.FirstByteRemote, s.GenerationEnd())
	}
}

func TestFileBasedRemoteWriteBottleneck(t *testing.T) {
	// If the remote FS writes slower than the wire, it bounds the landing.
	s := APSScan(33 * time.Millisecond)
	cfg := DefaultFileBased(1)
	cfg.Remote.WriteBandwidth = 100 * units.MBps
	slow, err := FileBased(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FileBased(s, DefaultFileBased(1))
	if err != nil {
		t.Fatal(err)
	}
	if slow.Completion <= fast.Completion {
		t.Fatalf("slow remote (%v) should delay completion vs fast (%v)",
			slow.Completion, fast.Completion)
	}
}

func TestFileBasedConfigValidation(t *testing.T) {
	s := APSScan(33 * time.Millisecond)
	cfg := DefaultFileBased(1)
	cfg.Local.WriteBandwidth = 0
	if _, err := FileBased(s, cfg); err == nil {
		t.Error("bad local FS accepted")
	}
	cfg = DefaultFileBased(1)
	cfg.Remote.ReadBandwidth = 0
	if _, err := FileBased(s, cfg); err == nil {
		t.Error("bad remote FS accepted")
	}
	cfg = DefaultFileBased(1)
	cfg.DTN.Rate = 0
	if _, err := FileBased(s, cfg); err == nil {
		t.Error("bad DTN accepted")
	}
}

func TestReductionPercentEdge(t *testing.T) {
	if ReductionPercent(Timeline{}, Timeline{}) != 0 {
		t.Error("degenerate reduction should be 0")
	}
	stream := Timeline{Completion: time.Second}
	file := Timeline{Completion: 10 * time.Second}
	if got := ReductionPercent(stream, file); math.Abs(got-90) > 1e-9 {
		t.Errorf("reduction = %v", got)
	}
}

func TestWriterFallsBehindSlowFS(t *testing.T) {
	// A local FS slower than the generation rate forces staging to lag
	// generation; completion must exceed the naive sum.
	s := APSScan(33 * time.Millisecond) // 254 MB/s generation
	cfg := DefaultFileBased(1440)
	cfg.Local.WriteBandwidth = 100 * units.MBps // cannot keep up
	tl, err := FileBased(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Staging alone needs total/100MBps ~ 120 s > generation 47.5 s.
	minStage := s.TotalBytes().Bytes() / 100e6
	if tl.Completion.Seconds() < minStage {
		t.Fatalf("completion %v cannot beat staging floor %v s", tl.Completion, minStage)
	}
}

func TestDefaultFileBasedUsesPresets(t *testing.T) {
	cfg := DefaultFileBased(10)
	if cfg.Local.Name != fsim.VoyagerGPFS().Name || cfg.Remote.Name != fsim.EagleLustre().Name {
		t.Fatalf("presets wrong: %s / %s", cfg.Local.Name, cfg.Remote.Name)
	}
	if cfg.AggregateFiles != 10 {
		t.Fatal("aggregate count not carried")
	}
}
