package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seconds", "2", "-concurrency", "6", "-flows", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"offered load:  96%", "worst FCT:", "SSS:", "regime:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestSimScheduled(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seconds", "2", "-strategy", "scheduled"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scheduled") {
		t.Errorf("strategy missing:\n%s", out.String())
	}
}

func TestSimCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.csv")
	var out strings.Builder
	if err := run([]string{"-seconds", "1", "-csv", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "client_id") {
		t.Errorf("csv content: %s", data)
	}
}

func TestLiveMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "live", "-seconds", "1", "-concurrency", "2",
		"-flows", "2", "-size", "256KB"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live loopback") {
		t.Errorf("live output:\n%s", out.String())
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-mode", "quantum"},
		{"-strategy", "chaotic"},
		{"-mode", "live", "-strategy", "chaotic"},
		{"-size", "banana"},
		{"-mode", "live", "-size", "banana"},
		{"-seconds", "0"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
