package sim

import (
	"testing"
	"testing/quick"
)

func TestEventQueueOrdering(t *testing.T) {
	var q EventQueue
	var order []int
	q.Push(3, func() { order = append(order, 3) })
	q.Push(1, func() { order = append(order, 1) })
	q.Push(2, func() { order = append(order, 2) })
	for q.Len() > 0 {
		e, err := q.Pop()
		if err != nil {
			t.Fatal(err)
		}
		e.Fn()
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestEventQueueFIFOAmongTies(t *testing.T) {
	var q EventQueue
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		q.Push(5, func() { order = append(order, i) })
	}
	for q.Len() > 0 {
		e, _ := q.Pop()
		e.Fn()
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order broken: %v", order)
		}
	}
}

func TestEventQueueEmpty(t *testing.T) {
	var q EventQueue
	if _, err := q.Pop(); err != ErrEmptyQueue {
		t.Errorf("Pop = %v", err)
	}
	if _, err := q.PeekTime(); err != ErrEmptyQueue {
		t.Errorf("PeekTime = %v", err)
	}
}

func TestClockAdvances(t *testing.T) {
	var c Clock
	var at []float64
	c.Schedule(2, func() { at = append(at, c.Now()) })
	c.Schedule(1, func() {
		at = append(at, c.Now())
		// Events can schedule more events.
		c.Schedule(0.5, func() { at = append(at, c.Now()) })
	})
	c.Run()
	want := []float64{1, 1.5, 2}
	if len(at) != 3 {
		t.Fatalf("ran %d events: %v", len(at), at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("times = %v, want %v", at, want)
		}
	}
	if c.Now() != 2 {
		t.Fatalf("final clock = %v", c.Now())
	}
}

func TestClockRunUntil(t *testing.T) {
	var c Clock
	ran := 0
	for _, tt := range []float64{1, 2, 3, 4} {
		c.ScheduleAt(tt, func() { ran++ })
	}
	c.RunUntil(2.5)
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if c.Pending() != 2 {
		t.Fatalf("pending = %d", c.Pending())
	}
	c.RunUntil(100)
	if ran != 4 {
		t.Fatalf("ran %d after second RunUntil", ran)
	}
}

func TestScheduleClamping(t *testing.T) {
	var c Clock
	c.Schedule(5, func() {})
	c.Step()
	// Scheduling in the past clamps to now.
	fired := false
	c.ScheduleAt(1, func() { fired = true })
	c.Step()
	if !fired || c.Now() != 5 {
		t.Fatalf("past event: fired=%v now=%v", fired, c.Now())
	}
	c.Schedule(-3, func() { fired = true })
	if tm, _ := c.q.PeekTime(); tm != 5 {
		t.Fatalf("negative delay not clamped: %v", tm)
	}
}

func TestStepOnEmpty(t *testing.T) {
	var c Clock
	if c.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 1000; i++ {
		j := g.Jitter(0.25)
		if j < -0.25 || j > 0.25 {
			t.Fatalf("jitter out of range: %v", j)
		}
	}
}

func TestRNGPerm(t *testing.T) {
	g := NewRNG(2)
	p := g.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad perm: %v", p)
		}
		seen[v] = true
	}
}

// Property: events always execute in non-decreasing time order.
func TestQuickEventOrdering(t *testing.T) {
	f := func(times []float64) bool {
		var c Clock
		var ran []float64
		for _, tt := range times {
			if tt < 0 || tt != tt { // negative or NaN
				continue
			}
			c.ScheduleAt(tt, func() { ran = append(ran, c.Now()) })
		}
		c.Run()
		for i := 1; i < len(ran); i++ {
			if ran[i] < ran[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
