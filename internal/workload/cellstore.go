package workload

// The cell store: cell-granular disk persistence for the sweep/grid
// caches. Every GridCell outcome is stored as an independently
// addressable, version-stamped record keyed by the fingerprint of the
// cell's own Experiment (network point + Table 2 coordinates + derived
// seed) — never by the grid that happened to compute it. Because cell
// seeds are intrinsic to cell coordinates (grid.go, netPointSeedOffset),
// a record written while computing one grid serves the identical cell of
// ANY other grid: sub-grids and overlapping grids reuse every cell ever
// computed, and a sub-grid fully contained in a previously-run grid
// assembles with zero engine runs.
//
// The store is corruption-tolerant (any defective record is a miss that
// recomputes only that cell) and degrades to persistence-off — with a
// single stderr warning — the first time a write fails, so an unwritable
// cache directory costs one failed attempt, not one per cell.

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// CellRecordVersion stamps every cell record on disk. It supersedes the
// whole-blob DiskCacheVersion of the earlier cache format (old blob
// files simply never match a cell fingerprint and age out as misses —
// migration by miss). Bump it whenever the simulation dynamics, the
// per-cell seed derivation, or the SweepRow schema change: stale records
// then fail the version check and are recomputed.
const CellRecordVersion = "repro-cells/v1"

// cellFingerprint returns the canonical key of one cell's experiment,
// covering every field that affects the cell's row: duration, the
// Table 2 coordinates, transfer size, strategy, and the full network
// config with the cell's axis overrides and derived seed already baked
// in. Equal fingerprints ⇒ bit-identical rows, which is what makes a
// stored record a sound substitute for a recompute. KeepClientResults is
// deliberately absent: rows that pin client results never touch the
// store (the planner skips persistence entirely).
func cellFingerprint(e Experiment) string {
	var b strings.Builder
	b.Grow(256)
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }
	fmt.Fprintf(&b, "cell;dur=%d;conc=%d;p=%d;size=%s;strat=%d",
		int64(e.Duration), e.Concurrency, e.ParallelFlows,
		f(float64(e.TransferSize)), int(e.Strategy))
	n := e.Net
	fmt.Fprintf(&b, ";cap=%s;rtt=%d;mss=%s;buf=%s;icw=%d;rto=%d;seed=%d;maxt=%s;rq=%t;cc=%d",
		f(float64(n.Capacity)), int64(n.BaseRTT), f(float64(n.MSS)), f(float64(n.Buffer)),
		n.InitCwndSegments, int64(n.RTO), n.Seed, f(n.MaxTime), n.RecordQueue, int(n.CC))
	fmt.Fprintf(&b, ";xfrac=%s;xper=%d;xduty=%s;xjit=%t",
		f(n.Cross.Fraction), int64(n.Cross.Period), f(n.Cross.Duty), n.Cross.PhaseJitter)
	return b.String()
}

// cellStore persists SweepRows keyed by cell fingerprint under one
// directory. The zero value has persistence off; setDir enables it. Two
// stores pointed at the same directory share records — across cache
// instances and across processes — because the record key is the cell
// fingerprint, not the owning cache or grid.
type cellStore struct {
	mu       sync.Mutex
	dir      string
	disabled bool
}

// setDir points the store at a directory ("" disables persistence) and
// clears any degrade state from a previous directory.
func (s *cellStore) setDir(dir string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dir = dir
	s.disabled = false
}

// activeDir returns the directory to use now: "" when persistence is
// off or the store has degraded.
func (s *cellStore) activeDir() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disabled {
		return ""
	}
	return s.dir
}

// disable turns persistence off for the store's lifetime (until the
// next setDir) after a write failure, warning once per process. Without
// this, an unwritable cache directory would retry — and fail — once per
// freshly computed cell.
func (s *cellStore) disable(err error) {
	s.mu.Lock()
	s.disabled = true
	s.mu.Unlock()
	warnPersistenceOff(err)
}

// persistWarnOnce collapses every degrade event in the process into ONE
// stderr warning: a 1000-cell grid on a read-only cache directory must
// not print 1000 lines. persistWarnW is swapped by tests.
var (
	persistWarnOnce sync.Once
	persistWarnW    io.Writer = os.Stderr
)

func warnPersistenceOff(err error) {
	persistWarnOnce.Do(func() {
		fmt.Fprintf(persistWarnW, "workload: disk cache unavailable, continuing without persistence: %v\n", err)
	})
}

// load reads the record for fp into row, reporting false — a miss, never
// an error — on any defect: missing or unreadable file, truncated or
// corrupt JSON, version or fingerprint mismatch, or a payload that does
// not belong to cell c. Defective files are removed so the following
// store rewrites them; only the damaged cell recomputes.
func (s *cellStore) load(fp string, c GridCell, row *SweepRow) bool {
	dir := s.activeDir()
	if dir == "" {
		return false
	}
	var rec SweepRow
	if !diskLoad(dir, CellRecordVersion, fp, &rec) {
		return false
	}
	// Structural acceptance: the record must be a populated row for this
	// cell's Table 2 coordinates. Anything else is corruption (or a
	// fingerprint-prefix collision) — drop the file and recompute.
	if rec.Concurrency != c.Concurrency || rec.ParallelFlows != c.ParallelFlows ||
		rec.Worst <= 0 || len(rec.TransferTimes) == 0 {
		os.Remove(diskPath(dir, fp))
		return false
	}
	*row = rec
	return true
}

// store writes the record for fp, best-effort: the first failure
// degrades the whole store to persistence-off (cache writes must never
// fail a run, and must not retry per cell).
func (s *cellStore) store(fp string, row SweepRow) {
	dir := s.activeDir()
	if dir == "" {
		return
	}
	if err := diskStore(dir, CellRecordVersion, fp, row); err != nil {
		s.disable(err)
	}
}

// Cache observability counters, next to engineRuns (workload.go). All
// are cumulative and process-wide; CLIs report per-run deltas via
// ReadCacheStats().Since.
var (
	cellsRequested atomic.Int64
	cellsFromMemo  atomic.Int64
	cellsFromDisk  atomic.Int64
)

// CacheStats is a snapshot of the process-wide cache counters: how many
// grid cells were requested through the caches, how many were served by
// the in-memory memo, how many were loaded from cell records on disk,
// and how many experiments actually executed on a simulation engine.
// For a fully warm request, EngineRuns is 0 and the memo/disk counters
// account for every requested cell.
type CacheStats struct {
	CellsRequested int64
	CellsFromMemo  int64
	CellsFromDisk  int64
	EngineRuns     int64
}

// ReadCacheStats returns the cumulative counters since process start.
func ReadCacheStats() CacheStats {
	return CacheStats{
		CellsRequested: cellsRequested.Load(),
		CellsFromMemo:  cellsFromMemo.Load(),
		CellsFromDisk:  cellsFromDisk.Load(),
		EngineRuns:     engineRuns.Load(),
	}
}

// Since returns the counter deltas accumulated after prev — the usual
// way to attribute cache behavior to one run:
//
//	before := workload.ReadCacheStats()
//	...run a grid...
//	delta := workload.ReadCacheStats().Since(before)
func (s CacheStats) Since(prev CacheStats) CacheStats {
	return CacheStats{
		CellsRequested: s.CellsRequested - prev.CellsRequested,
		CellsFromMemo:  s.CellsFromMemo - prev.CellsFromMemo,
		CellsFromDisk:  s.CellsFromDisk - prev.CellsFromDisk,
		EngineRuns:     s.EngineRuns - prev.EngineRuns,
	}
}

// String renders the stats in the stable machine-greppable form the
// CLIs print for -cache-stats (CI's subgrid-warm gate matches on
// "engine-runs=0").
func (s CacheStats) String() string {
	return fmt.Sprintf("cells=%d memo=%d disk=%d engine-runs=%d",
		s.CellsRequested, s.CellsFromMemo, s.CellsFromDisk, s.EngineRuns)
}
