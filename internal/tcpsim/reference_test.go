package tcpsim

// This file preserves the original pointer-based round loop verbatim as
// the golden reference for the allocation-free SoA engine (engine.go).
// TestEngineMatchesReference asserts bit-identical results; any change to
// the engine's dynamics must be made here too, deliberately.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// refFlow is the original internal mutable state of one TCP connection.
type refFlow struct {
	spec      FlowSpec
	remaining float64
	cwnd      float64
	ssthresh  float64
	stalledTo float64
	active    bool
	done      bool
	result    FlowResult

	wmaxSeg    float64
	epochStart float64
	kCubic     float64
}

func (f *refFlow) cubicWindow(tt, mss float64) float64 {
	d := tt - f.kCubic
	return (cubicC*d*d*d + f.wmaxSeg) * mss
}

func (f *refFlow) cubicOnLoss(now, mss float64) {
	f.wmaxSeg = f.cwnd / mss
	f.epochStart = now
	f.kCubic = math.Cbrt(f.wmaxSeg * (1 - cubicBeta) / cubicC)
}

// referenceRun is the seed implementation of Run, kept byte-for-byte in
// behavior (allocating per round, []*refFlow pointer chase).
func referenceRun(cfg Config, specs []FlowSpec) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, ErrNoFlows
	}
	for _, s := range specs {
		if s.Size < 0 || s.Arrival < 0 || math.IsNaN(s.Arrival) || math.IsInf(s.Arrival, 0) {
			return nil, fmt.Errorf("%w: id=%d arrival=%v size=%v", ErrBadFlowSpec, s.ID, s.Arrival, s.Size)
		}
	}

	rng := sim.NewRNG(cfg.Seed)
	capacity := cfg.Capacity.ByteRate().BytesPerSecond()
	crossPhase := 0.0
	if cfg.Cross.enabled() && cfg.Cross.PhaseJitter && cfg.Cross.Period > 0 {
		crossPhase = rng.Float64() * cfg.Cross.Period.Seconds()
	}
	mss := cfg.MSS.Bytes()
	buffer := cfg.bufferBytes()
	baseRTT := cfg.BaseRTT.Seconds()
	rto := cfg.RTO.Seconds()
	maxWin := cfg.BDP() + buffer
	initCwnd := float64(cfg.InitCwndSegments) * mss

	pending := make([]*refFlow, 0, len(specs))
	for _, s := range specs {
		f := &refFlow{
			spec:       s,
			remaining:  s.Size.Bytes(),
			cwnd:       initCwnd,
			ssthresh:   maxWin,
			epochStart: -1,
			result: FlowResult{
				ID:      s.ID,
				Arrival: s.Arrival,
				Bytes:   s.Size.Bytes(),
			},
		}
		pending = append(pending, f)
	}
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].spec.Arrival < pending[j].spec.Arrival })

	res := &Result{Counters: &stats.LinkCounters{}}
	active := make([]*refFlow, 0, len(pending))
	finished := make([]FlowResult, 0, len(pending))

	t := pending[0].spec.Arrival
	queue := 0.0
	servedBytes := 0.0
	servedPkts := int64(0)
	if err := res.Counters.Record(t, 0, 0); err != nil {
		return nil, err
	}

	nextPending := 0
	activate := func(now float64) {
		for nextPending < len(pending) && pending[nextPending].spec.Arrival <= now {
			f := pending[nextPending]
			nextPending++
			if f.remaining <= 0 {
				f.result.End = f.spec.Arrival
				finished = append(finished, f.result)
				continue
			}
			f.active = true
			active = append(active, f)
		}
	}
	activate(t)

	for len(active) > 0 || nextPending < len(pending) {
		if t > cfg.maxTime() {
			return nil, fmt.Errorf("%w (t=%.1fs, %d flows still active)", ErrHorizon, t, len(active))
		}
		if len(active) == 0 {
			if queue > 0 {
				servedBytes += queue
				servedPkts += int64(queue / mss)
				if err := res.Counters.Record(t+queue/capacity, servedBytes, servedPkts); err != nil {
					return nil, err
				}
				queue = 0
			}
			t = pending[nextPending].spec.Arrival
			activate(t)
			continue
		}

		roundCap := capacity * (1 - cfg.Cross.consumedAt(t, crossPhase))
		d := baseRTT + queue/roundCap

		offered := make([]float64, len(active))
		total := 0.0
		for i, f := range active {
			if t < f.stalledTo {
				continue
			}
			w := math.Min(f.cwnd, f.remaining)
			offered[i] = w
			total += w
		}

		drain := roundCap * d
		backlog := queue + total
		served := math.Min(backlog, drain)
		newQueue := backlog - served
		dropped := 0.0
		if newQueue > buffer {
			dropped = newQueue - buffer
			newQueue = buffer
		}

		lostPerFlow := make([]float64, len(active))
		if dropped > 0 && total > 0 {
			weights := make([]float64, len(active))
			wsum := 0.0
			for i := range active {
				if offered[i] <= 0 {
					continue
				}
				w := 0.5 + rng.Float64()
				weights[i] = w * offered[i]
				wsum += weights[i]
			}
			for i := range active {
				if wsum <= 0 {
					break
				}
				loss := dropped * weights[i] / wsum
				if loss > offered[i] {
					loss = offered[i]
				}
				lostPerFlow[i] = loss
			}
		}

		for i, f := range active {
			if offered[i] <= 0 {
				continue
			}
			accepted := offered[i] - lostPerFlow[i]
			f.remaining -= accepted
			if lostPerFlow[i] > 0 {
				f.result.Retransmits += int64(math.Ceil(lostPerFlow[i] / mss))
				lossRatio := lostPerFlow[i] / offered[i]
				if lossRatio > 0.95 {
					f.result.Timeouts++
					if cfg.CC == Cubic {
						f.cubicOnLoss(t+d+rto, mss)
					}
					f.ssthresh = math.Max(f.cwnd/2, 2*mss)
					f.cwnd = mss
					f.stalledTo = t + d + rto
				} else {
					switch cfg.CC {
					case Cubic:
						f.cubicOnLoss(t+d, mss)
						f.ssthresh = math.Max(f.cwnd*cubicBeta, 2*mss)
					default:
						f.ssthresh = math.Max(f.cwnd/2, 2*mss)
					}
					f.cwnd = f.ssthresh
				}
			} else {
				switch {
				case f.cwnd < f.ssthresh:
					f.cwnd = math.Min(f.cwnd*2, maxWin)
				case cfg.CC == Cubic:
					if f.epochStart < 0 {
						f.cubicOnLoss(t, mss)
					}
					tt := t + d - f.epochStart
					target := f.cubicWindow(tt, mss)
					wEst := (f.wmaxSeg*cubicBeta +
						3*(1-cubicBeta)/(1+cubicBeta)*(tt/d)) * mss
					if wEst > target {
						target = wEst
					}
					if target < f.cwnd {
						target = f.cwnd
					}
					if target > 1.5*f.cwnd {
						target = 1.5 * f.cwnd
					}
					f.cwnd = math.Min(target, maxWin)
				default:
					f.cwnd = math.Min(f.cwnd+mss, maxWin)
				}
			}
			if f.remaining <= 0 {
				f.done = true
				frac := 1.0
				if accepted > 0 {
					need := f.remaining + accepted
					frac = need / accepted
					if frac > 1 {
						frac = 1
					}
				}
				f.result.End = t + d*frac
			}
		}

		servedBytes += served
		servedPkts += int64(served / mss)
		res.DroppedBytes += dropped
		if cfg.RecordQueue {
			res.QueueDepth.AddPoint(t, newQueue)
		}

		t += d
		if err := res.Counters.Record(t, servedBytes, servedPkts); err != nil {
			return nil, err
		}
		keep := active[:0]
		for _, f := range active {
			if f.done {
				finished = append(finished, f.result)
			} else {
				keep = append(keep, f)
			}
		}
		active = keep
		queue = newQueue
		activate(t)
	}

	if queue > 0 {
		servedBytes += queue
		servedPkts += int64(queue / mss)
		t += queue / capacity
		if err := res.Counters.Record(t, servedBytes, servedPkts); err != nil {
			return nil, err
		}
		queue = 0
	}

	sort.SliceStable(finished, func(i, j int) bool {
		if finished[i].Arrival != finished[j].Arrival {
			return finished[i].Arrival < finished[j].Arrival
		}
		return finished[i].ID < finished[j].ID
	})
	res.Flows = finished
	res.Duration = t
	return res, nil
}
