// lhc-triggers walks the paper's most extreme science driver (§2.2.1):
// the LHC's two-tier trigger chain reducing 40 TB/s of raw collisions to
// ~1 GB/s for storage. The example pushes the raw rate through the
// reduction pipeline, then asks the decision model at each stage
// boundary: could this stage's output stream to remote HPC instead of
// being processed on site?
//
// The answer the paper implies — and this reproduces — is that streaming
// is structurally impossible before the triggers (raw and post-L1 rates
// dwarf any WAN) and becomes trivially feasible after the HLT, which is
// exactly why the trigger farms must live at CERN.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/facility"
	"repro/internal/reduction"
	"repro/internal/units"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lhc-triggers: ")

	lhc := facility.LHC()
	chain := reduction.ATLASTrigger()
	raw := lhc.RawRate

	rates, err := chain.StageRates(raw)
	if err != nil {
		log.Fatal(err)
	}
	total, err := chain.TotalReduction()
	if err != nil {
		log.Fatal(err)
	}
	lat, err := chain.Latency()
	if err != nil {
		log.Fatal(err)
	}
	demand, err := chain.ComputeDemand(raw)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %v raw -> %v stored (%.0fx reduction)\n",
		chain.Name, raw, rates[len(rates)-1], total)
	fmt.Printf("chain decision latency %v, sustained compute demand %v\n\n", lat, demand)

	// At each stage boundary, ask: can this rate stream over the WAN?
	link := lhc.Link // 100 Gbps
	labels := []string{"raw detector output", "after L1 trigger", "after HLT"}
	for i, rate := range rates {
		fmt.Printf("%-22s %14v:", labels[i], rate)
		util := rate.BytesPerSecond() / link.ByteRate().BytesPerSecond()
		if util > 1 {
			fmt.Printf("  CANNOT stream (needs %.0fx the %v link)\n", util, link)
			continue
		}
		// Streaming is rate-feasible; run the full decision for one
		// second of data. Post-trigger physics reconstruction is
		// compute-heavy (~50 TFLOP/GB) against a modest on-site farm vs
		// a leadership-class remote allocation.
		p := core.Params{
			UnitSize:              units.ByteSize(rate.BytesPerSecond()),
			ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(50e12),
			LocalRate:             20 * units.TeraFLOPS,
			RemoteRate:            500 * units.TeraFLOPS,
			Bandwidth:             link,
			TransferRate:          units.ByteRate(0.8 * float64(link.ByteRate())),
			Theta:                 1,
		}
		d, err := core.Decide(p, core.DecideOpts{GenerationRate: rate, Deadline: core.Tier2.Budget()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  stream-feasible at %.0f%% of the link -> decision: %s\n", util*100, d.Choice)
	}

	fmt.Println("\nreading: the trigger chain is not optional — it is what moves the")
	fmt.Println("workload from the 'structurally impossible' to the 'streamable' regime.")
	fmt.Println("Remote HPC only enters the picture at the post-trigger boundary.")
}
