package scenario

// AxesSpec is the canonical axis-set vocabulary: the comma-separated
// axis lists that the -grid modes of cmd/ssslab and cmd/streamdecide
// share, the JSON fields a decided service request speaks, and the grid
// description portfolio archives are keyed by. One spec, three
// surfaces: -rtts 8ms,16ms,64ms -buffers auto,2MB -ccs reno,cubic
// -crosses 0,0.3 -concs 1,4,8 -pflows 2,8, plus the multi-hop path
// axes -hops edge:10Gbps:2ms:1MB,wan:100Gbps:30ms:8MB:0.3,...
// -edge-caps 10Gbps,60Gbps -wan-rtts 20ms,60ms -ingress-buffers 4MB.

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/tcpsim"
	"repro/internal/units"
	"repro/internal/workload"
)

// AxesSpec holds raw CLI axis lists. An empty field leaves the
// corresponding axis of the base grid untouched; a set field replaces
// it. The JSON tags mirror the flag names exactly, so a decided service
// request speaks the same axis vocabulary as the CLIs — "concs" in a
// JSON body and -concs on a command line parse through the same code.
// The hop fields (Hops, EdgeCaps, WANRTTs, IngressBuffers) are the
// multi-hop extension and require "schema":"v2" in service bodies; see
// V2Fields.
type AxesSpec struct {
	Concs   string `json:"concs,omitempty"`   // e.g. "1,4,8"
	Flows   string `json:"pflows,omitempty"`  // e.g. "2,8"
	Sizes   string `json:"sizes,omitempty"`   // e.g. "0.5GB,2GB"
	RTTs    string `json:"rtts,omitempty"`    // e.g. "8ms,16ms,64ms"
	Buffers string `json:"buffers,omitempty"` // e.g. "auto,512KB,2MB" ("auto" = half-BDP default)
	CCs     string `json:"ccs,omitempty"`     // e.g. "reno,cubic"
	Crosses string `json:"crosses,omitempty"` // e.g. "0,0.3,0.6"
	// Hops is the path topology: comma-joined hop specs of the form
	// role:capacity:rtt[:buffer[:cross]], roles in edge→wan→ingress
	// order. One hop is exactly the flat link written differently; two
	// or more make the grid multi-hop.
	Hops string `json:"hops,omitempty"`
	// EdgeCaps sweeps the edge hop's uplink capacity (multi-hop only).
	EdgeCaps string `json:"edge_caps,omitempty"` // e.g. "10Gbps,60Gbps"
	// WANRTTs sweeps the WAN hop's RTT (multi-hop only).
	WANRTTs string `json:"wan_rtts,omitempty"` // e.g. "20ms,60ms"
	// IngressBuffers sweeps the facility-ingress queue (multi-hop only).
	IngressBuffers string `json:"ingress_buffers,omitempty"` // e.g. "auto,4MB"
}

// Register installs the grid axis flags on a FlagSet. Every -grid CLI
// registers through here, so adding an axis (or renaming a flag) cannot
// leave the CLIs accepting different grid vocabularies.
func (f *AxesSpec) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Concs, "concs", "", "grid axis: concurrency list, e.g. 1,4,8")
	fs.StringVar(&f.Flows, "pflows", "", "grid axis: parallel-flow list, e.g. 2,8")
	fs.StringVar(&f.Sizes, "sizes", "", "grid axis: transfer-size list, e.g. 0.5GB,2GB")
	fs.StringVar(&f.RTTs, "rtts", "", "grid axis: base RTT list, e.g. 8ms,16ms,64ms")
	fs.StringVar(&f.Buffers, "buffers", "", "grid axis: bottleneck buffer list, e.g. auto,2MB")
	fs.StringVar(&f.CCs, "ccs", "", "grid axis: congestion-control list (reno, cubic)")
	fs.StringVar(&f.Crosses, "crosses", "", "grid axis: cross-traffic fraction list, e.g. 0,0.3")
	fs.StringVar(&f.Hops, "hops", "",
		"path topology: role:capacity:rtt[:buffer[:cross]] hops, e.g. edge:10Gbps:2ms:1MB,wan:100Gbps:30ms:8MB:0.3")
	fs.StringVar(&f.EdgeCaps, "edge-caps", "", "hop axis: edge uplink capacity list, e.g. 10Gbps,60Gbps")
	fs.StringVar(&f.WANRTTs, "wan-rtts", "", "hop axis: WAN RTT list, e.g. 20ms,60ms")
	fs.StringVar(&f.IngressBuffers, "ingress-buffers", "", "hop axis: facility-ingress buffer list, e.g. auto,4MB")
}

// RunFlags lists every axis flag with whether the invocation set it, in
// the shape CompactCacheConflicts consumes — so the CLIs' standalone
// -compact-cache mode refuses the whole axis vocabulary without
// hand-maintaining (and drifting) a per-CLI list.
func (f AxesSpec) RunFlags() []RunFlag {
	return []RunFlag{
		{Name: "-concs", Set: f.Concs != ""},
		{Name: "-pflows", Set: f.Flows != ""},
		{Name: "-sizes", Set: f.Sizes != ""},
		{Name: "-rtts", Set: f.RTTs != ""},
		{Name: "-buffers", Set: f.Buffers != ""},
		{Name: "-ccs", Set: f.CCs != ""},
		{Name: "-crosses", Set: f.Crosses != ""},
		{Name: "-hops", Set: f.Hops != ""},
		{Name: "-edge-caps", Set: f.EdgeCaps != ""},
		{Name: "-wan-rtts", Set: f.WANRTTs != ""},
		{Name: "-ingress-buffers", Set: f.IngressBuffers != ""},
	}
}

// V2Fields returns the JSON names of the set fields that belong to the
// service's schema v2 — the multi-hop vocabulary. A v1 body using any
// of them is rejected by name, so an old client cannot have hop axes
// silently ignored.
func (f AxesSpec) V2Fields() []string {
	var out []string
	if f.Hops != "" {
		out = append(out, "hops")
	}
	if f.EdgeCaps != "" {
		out = append(out, "edge_caps")
	}
	if f.WANRTTs != "" {
		out = append(out, "wan_rtts")
	}
	if f.IngressBuffers != "" {
		out = append(out, "ingress_buffers")
	}
	return out
}

// GridHeader summarizes a normalized grid's dimensions for CLI output
// (cache-returned GridResult.Axes values are always normalized).
// Multi-hop grids report their hop axes; flat grids keep the exact
// legacy wording.
func GridHeader(a workload.Axes) string {
	if len(a.Path) > 1 {
		return fmt.Sprintf("%d cells = %d sizes x %d edge-caps x %d wan-rtts x %d ingress-buffers x %d CCs x %d flows x %d conc",
			a.Size(), len(a.TransferSizes), len(a.EdgeCaps), len(a.WANRTTs), len(a.IngressBuffers),
			len(a.CCs), len(a.ParallelFlows), len(a.Concurrencies))
	}
	return fmt.Sprintf("%d cells = %d sizes x %d RTTs x %d buffers x %d CCs x %d cross x %d flows x %d conc",
		a.Size(), len(a.TransferSizes), len(a.RTTs), len(a.Buffers), len(a.CCs),
		len(a.CrossFractions), len(a.ParallelFlows), len(a.Concurrencies))
}

// parseList parses a comma-separated list with one value parser,
// trimming blanks. An empty list parses to nil.
func parseList[T any](flag, s string, parse func(string) (T, error)) ([]T, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []T
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := parse(tok)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s %q: %w", flag, tok, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseBuffer parses one buffer-axis token; "auto" selects tcpsim's
// half-BDP default (ByteSize 0).
func parseBuffer(tok string) (units.ByteSize, error) {
	if tok == "auto" {
		return 0, nil
	}
	return units.ParseByteSize(tok)
}

// ParsePath parses a -hops topology spec: comma-joined hops, each
// role:capacity:rtt[:buffer[:cross]] with roles in edge→wan→ingress
// order. Buffer accepts "auto" (the half-BDP default). The parsed path
// is structurally validated, so a CLI or request error names the bad
// hop before any grid work starts. An empty spec parses to nil (flat).
func ParsePath(spec string) (tcpsim.Path, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	var p tcpsim.Path
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		parts := strings.Split(tok, ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("scenario: -hops %q: want role:capacity:rtt[:buffer[:cross]]", tok)
		}
		role, err := tcpsim.ParseHopRole(parts[0])
		if err != nil {
			return nil, fmt.Errorf("scenario: -hops %q: %w", tok, err)
		}
		capacity, err := units.ParseBitRate(parts[1])
		if err != nil {
			return nil, fmt.Errorf("scenario: -hops %q: capacity: %w", tok, err)
		}
		rtt, err := time.ParseDuration(parts[2])
		if err != nil {
			return nil, fmt.Errorf("scenario: -hops %q: rtt: %w", tok, err)
		}
		h := tcpsim.Hop{Role: role, Capacity: capacity, RTT: rtt}
		if len(parts) >= 4 {
			if h.Buffer, err = parseBuffer(parts[3]); err != nil {
				return nil, fmt.Errorf("scenario: -hops %q: buffer: %w", tok, err)
			}
		}
		if len(parts) == 5 {
			if h.CrossFraction, err = strconv.ParseFloat(parts[4], 64); err != nil {
				return nil, fmt.Errorf("scenario: -hops %q: cross: %w", tok, err)
			}
		}
		p = append(p, h)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: -hops: %w", err)
	}
	return p, nil
}

// Apply parses the lists onto a base grid and returns the result.
func (f AxesSpec) Apply(base workload.Axes) (workload.Axes, error) {
	concs, err := parseList("-concs", f.Concs, strconv.Atoi)
	if err != nil {
		return base, err
	}
	flows, err := parseList("-pflows", f.Flows, strconv.Atoi)
	if err != nil {
		return base, err
	}
	sizes, err := parseList("-sizes", f.Sizes, units.ParseByteSize)
	if err != nil {
		return base, err
	}
	rtts, err := parseList("-rtts", f.RTTs, time.ParseDuration)
	if err != nil {
		return base, err
	}
	buffers, err := parseList("-buffers", f.Buffers, parseBuffer)
	if err != nil {
		return base, err
	}
	ccs, err := parseList("-ccs", f.CCs, tcpsim.ParseCongestionControl)
	if err != nil {
		return base, err
	}
	crosses, err := parseList("-crosses", f.Crosses, func(tok string) (float64, error) {
		return strconv.ParseFloat(tok, 64)
	})
	if err != nil {
		return base, err
	}
	path, err := ParsePath(f.Hops)
	if err != nil {
		return base, err
	}
	edgeCaps, err := parseList("-edge-caps", f.EdgeCaps, units.ParseBitRate)
	if err != nil {
		return base, err
	}
	wanRTTs, err := parseList("-wan-rtts", f.WANRTTs, time.ParseDuration)
	if err != nil {
		return base, err
	}
	ingressBuffers, err := parseList("-ingress-buffers", f.IngressBuffers, parseBuffer)
	if err != nil {
		return base, err
	}
	if len(concs) > 0 {
		base.Concurrencies = concs
	}
	if len(flows) > 0 {
		base.ParallelFlows = flows
	}
	if len(sizes) > 0 {
		base.TransferSizes = sizes
	}
	if len(rtts) > 0 {
		base.RTTs = rtts
	}
	if len(buffers) > 0 {
		base.Buffers = buffers
	}
	if len(ccs) > 0 {
		base.CCs = ccs
	}
	if len(crosses) > 0 {
		base.CrossFractions = crosses
	}
	if len(path) > 0 {
		base.Path = path
	}
	if len(edgeCaps) > 0 {
		base.EdgeCaps = edgeCaps
	}
	if len(wanRTTs) > 0 {
		base.WANRTTs = wanRTTs
	}
	if len(ingressBuffers) > 0 {
		base.IngressBuffers = ingressBuffers
	}
	return base, nil
}
