package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// This file holds artifacts that go beyond the paper's figures — the
// future-work extensions DESIGN.md commits to (concurrency, queueing,
// variability). Their IDs carry an "ext-" prefix so readers can tell
// reproduction from extension at a glance.

// LoadHeatmap renders the full sweep as a (parallel flows × concurrency)
// worst-case heat map — a denser view of Fig. 2a's data that shows P's
// second-order effect.
func LoadHeatmap(sweep *workload.SweepResult) (Artifact, error) {
	if sweep == nil || len(sweep.Rows) == 0 {
		return Artifact{}, fmt.Errorf("experiments: empty sweep for heat map")
	}
	pSet := map[int]bool{}
	cSet := map[int]bool{}
	for _, r := range sweep.Rows {
		pSet[r.ParallelFlows] = true
		cSet[r.Concurrency] = true
	}
	ps := sortedKeys(pSet)
	cs := sortedKeys(cSet)

	rows := make([]string, len(ps))
	cols := make([]string, len(cs))
	vals := make([][]float64, len(ps))
	idx := func(xs []int, v int) int {
		for i, x := range xs {
			if x == v {
				return i
			}
		}
		return -1
	}
	for i, p := range ps {
		rows[i] = fmt.Sprintf("P=%d", p)
		vals[i] = make([]float64, len(cs))
	}
	for i, c := range cs {
		cols[i] = fmt.Sprintf("c=%d", c)
	}
	for _, r := range sweep.Rows {
		vals[idx(ps, r.ParallelFlows)][idx(cs, r.Concurrency)] = r.Worst.Seconds()
	}

	title := "Worst transfer time (s) by parallel flows x concurrency [extension]"
	text, err := plot.HeatMap(title, rows, cols, vals)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: heat map: %w", err)
	}
	t := &plot.Table{Header: append([]string{"P\\concurrency"}, cols...)}
	for i, p := range rows {
		cells := make([]string, 0, len(cs)+1)
		cells = append(cells, p)
		for j := range cs {
			cells = append(cells, fmt.Sprintf("%.3f", vals[i][j]))
		}
		t.AddRow(cells...)
	}
	var csv bytes.Buffer
	_ = t.WriteCSV(&csv)
	return Artifact{ID: "ext-heatmap", Title: title, Text: text, CSV: csv.String()}, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// VariabilityReport evaluates the decision model against the measured
// transfer-time distribution of the sweep's highest-load stable cell —
// the "variability in network and compute performance" extension. It
// reports the probability the remote path wins, deadline satisfaction,
// and whether the median and worst-case decisions disagree.
func VariabilityReport(sweep *workload.SweepResult) (Artifact, error) {
	if sweep == nil || len(sweep.Rows) == 0 {
		return Artifact{}, fmt.Errorf("experiments: empty sweep for variability report")
	}
	// Pick the highest offered load at or below 100% — congested but not
	// divergent, the regime where variability actually matters.
	var cell *workload.SweepRow
	for i := range sweep.Rows {
		r := &sweep.Rows[i]
		if r.OfferedLoad <= 1.0 && (cell == nil || r.OfferedLoad > cell.OfferedLoad ||
			(r.OfferedLoad == cell.OfferedLoad && r.ParallelFlows > cell.ParallelFlows)) {
			cell = r
		}
	}
	if cell == nil {
		cell = &sweep.Rows[len(sweep.Rows)-1]
	}

	fcts := stats.NewSample()
	for _, d := range cell.TransferTimes {
		fcts.Add(d)
	}

	// The §5 coherent-scattering parameters, deadline Tier 2.
	p := core.Params{
		UnitSize:              2 * units.GB,
		ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(17e12),
		LocalRate:             5 * units.TeraFLOPS,
		RemoteRate:            100 * units.TeraFLOPS,
		Bandwidth:             sweep.Config.Net.Capacity,
		TransferRate:          2 * units.GBps,
		Theta:                 1,
	}
	rep, err := core.DecideUnderVariability(p, fcts, sweep.Config.TransferSize, core.Tier2.Budget())
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: variability: %w", err)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "measured cell: concurrency=%d P=%d offered=%.0f%% (%d transfers)\n",
		cell.Concurrency, cell.ParallelFlows, cell.OfferedLoad*100, rep.N)
	fmt.Fprintf(&b, "workload: coherent scattering (2 GB units, 34 TF), Tier 2 deadline\n\n")
	fmt.Fprintf(&b, "P(remote wins)        = %.2f\n", rep.PRemoteWins)
	fmt.Fprintf(&b, "P(meets Tier 2)       = %.2f\n", rep.PMeetsDeadline)
	fmt.Fprintf(&b, "T_pct distribution    : %s\n", rep.TPct)
	fmt.Fprintf(&b, "median-case decision  : %s\n", rep.MedianChoice)
	fmt.Fprintf(&b, "worst-case decision   : %s\n", rep.WorstChoice)
	if rep.Disagreement() {
		fmt.Fprintf(&b, "\n=> average-case and worst-case decisions DISAGREE: designing for the\n")
		fmt.Fprintf(&b, "   median here ships a system that fails under congestion (the paper's thesis).\n")
	} else {
		fmt.Fprintf(&b, "\n=> decision robust across the measured distribution at this load.\n")
	}

	title := "Decision under measured variability (future-work extension)"
	return Artifact{ID: "ext-variability", Title: title, Text: b.String()}, nil
}

// GainMap renders the remote-wins frontier: the gain surface over
// (α, r) for the §5 coherent-scattering workload. Cells above 1 favor
// streaming to remote HPC; the frontier line is where facility planning
// decisions flip.
func GainMap() (Artifact, error) {
	p := core.Params{
		UnitSize:              2 * units.GB,
		ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(17e12),
		LocalRate:             5 * units.TeraFLOPS,
		RemoteRate:            100 * units.TeraFLOPS,
		Bandwidth:             25 * units.Gbps,
		TransferRate:          2 * units.GBps,
		Theta:                 1,
	}
	alphas := []float64{0.1, 0.25, 0.5, 0.75, 1.0}
	rs := []float64{0.5, 1, 2, 5, 10, 20}
	grid, err := p.GainGrid(alphas, rs)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: gain grid: %w", err)
	}
	rows := make([]string, len(rs))
	for i, r := range rs {
		rows[i] = fmt.Sprintf("r=%g", r)
	}
	cols := make([]string, len(alphas))
	for j, a := range alphas {
		cols[j] = fmt.Sprintf("a=%g", a)
	}
	title := "Gain G = T_local/T_pct over (alpha, r); G>1 => stream to remote [extension]"
	text, err := plot.HeatMap(title, rows, cols, grid)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: gain map: %w", err)
	}
	text += "workload: coherent scattering (2 GB units, 17 TFLOP/GB) on 25 Gbps\n"

	t := &plot.Table{Header: append([]string{"r\\alpha"}, cols...)}
	for i := range rs {
		cells := make([]string, 0, len(alphas)+1)
		cells = append(cells, rows[i])
		for j := range alphas {
			cells = append(cells, fmt.Sprintf("%.3f", grid[i][j]))
		}
		t.AddRow(cells...)
	}
	var csv bytes.Buffer
	_ = t.WriteCSV(&csv)
	return Artifact{ID: "ext-gainmap", Title: title, Text: text, CSV: csv.String()}, nil
}

// PipelineReport applies the concurrency extension to the §5 workload: a
// continuous 1 Hz stream of 2 GB units through the remote pipeline.
func PipelineReport() (Artifact, error) {
	p := core.Params{
		UnitSize:              2 * units.GB,
		ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(17e12),
		LocalRate:             5 * units.TeraFLOPS,
		RemoteRate:            100 * units.TeraFLOPS,
		Bandwidth:             25 * units.Gbps,
		TransferRate:          2 * units.GBps,
		Theta:                 1,
	}
	const n = 60 // one minute of units
	interval := time.Second

	d, err := core.DecidePipeline(p, n, interval)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: pipeline report: %w", err)
	}
	lag, lagErr := p.SteadyStateLag(interval)

	var b bytes.Buffer
	tr, cp := p.PipelineStageTimes()
	fmt.Fprintf(&b, "workload: %d x 2 GB units at %v cadence (coherent scattering)\n\n", n, interval)
	fmt.Fprintf(&b, "stage times: transfer %v, compute %v => cycle %v\n",
		tr.Round(time.Millisecond), cp.Round(time.Millisecond), p.PipelineBottleneck().Round(time.Millisecond))
	fmt.Fprintf(&b, "remote completion (%d units): %v\n", n, d.RemoteCompletion.Round(time.Millisecond))
	fmt.Fprintf(&b, "local  completion (%d units): %v\n", n, d.LocalCompletion.Round(time.Millisecond))
	fmt.Fprintf(&b, "remote keeps 1 Hz cadence: %v; local keeps cadence: %v\n", d.RemoteKeepsUp, d.LocalKeepsUp)
	if lagErr == nil {
		fmt.Fprintf(&b, "steady-state result lag: %v\n", lag.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "\nDECISION: %s\n%s\n", d.Choice, d.Reason)

	title := "Streaming pipeline concurrency model (future-work extension)"
	return Artifact{ID: "ext-pipeline", Title: title, Text: b.String()}, nil
}
