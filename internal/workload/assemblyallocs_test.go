package workload

// The grid-side allocation contracts, the workload mirror of
// tcpsim's TestEngineSteadyStateAllocs (PERFORMANCE.md): cell
// execution assembly and warm record loads both run on reused buffers,
// so a 10⁵-cell grid neither allocates per client on the way in nor
// garbage-collects its way through a warm open.

import (
	"testing"
	"time"

	"repro/internal/tcpsim"
	"repro/internal/units"
)

// TestCellAssemblyAllocs gates the execution-side assembly
// (runExperimentRow with a worker scratch): once the scratch is warm,
// the only allocation left per cell is the row's escaping
// TransferTimes slice — specs, per-client aggregation, the Result and
// its Clients, and the quantile sample all reuse the worker's buffers.
func TestCellAssemblyAllocs(t *testing.T) {
	for name, strat := range map[string]Strategy{
		"simultaneous": SpawnSimultaneous,
		"scheduled":    SpawnScheduled,
	} {
		t.Run(name, func(t *testing.T) {
			e := Experiment{
				Duration:      2 * time.Second,
				Concurrency:   4,
				ParallelFlows: 8,
				TransferSize:  0.25 * units.GB,
				Strategy:      strat,
				Net:           tcpsim.DefaultConfig(),
			}
			eng := tcpsim.NewEngine()
			var sc runScratch
			for i := 0; i < 2; i++ { // warm engine and scratch buffers
				if _, err := runExperimentRow(e, false, eng, &sc); err != nil {
					t.Fatal(err)
				}
			}
			avg := testing.AllocsPerRun(20, func() {
				if _, err := runExperimentRow(e, false, eng, &sc); err != nil {
					t.Fatal(err)
				}
			})
			// One alloc is the TransferTimes slice; allow one more for
			// runtime noise (e.g. a map/pool internals touch), not for a
			// per-client or per-spec regression.
			if avg > 2 {
				t.Fatalf("scratch-backed cell assembly allocates %.1f times per cell, want <= 2", avg)
			}
		})
	}
}

// TestGridAssemblyAllocs gates the warm-open load path (the tentpole's
// other half): reading one cell's record from a compacted v3 segment —
// index lookup, pooled ReadAt, binary decode, acceptance check — stays
// within a constant few allocations per cell (the fingerprint keying
// and the row's TransferTimes), where the v2 JSON decode allocated per
// field.
func TestGridAssemblyAllocs(t *testing.T) {
	dir := t.TempDir()
	a := fastAxes()
	seedCellRecords(t, dir, a)
	if _, err := CompactDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	ResetSegmentStores()
	t.Cleanup(ResetSegmentStores)

	na := a.normalized()
	cells := na.Cells()
	store := &cellStore{}
	store.setDir(dir)
	fps := make([]string, len(cells))
	for i, c := range cells {
		fps[i] = cellFingerprint(na.experiment(c))
	}
	var row SweepRow
	for i, c := range cells { // warm: index load, handle open, pool fill
		if src := store.load(fps[i], c, &row); src != srcSegment {
			t.Fatalf("cell %d not served from segment (src=%d)", i, src)
		}
	}

	c, fp := cells[3], fps[3]
	avg := testing.AllocsPerRun(100, func() {
		var r SweepRow
		if store.load(fp, c, &r) != srcSegment {
			t.Fatal("warm load missed")
		}
	})
	t.Logf("warm per-cell load: %.1f allocs", avg)
	// Budget: fingerprint keying (the []byte conversion + hex digest)
	// plus the row's TransferTimes slice, with one spare — NOT a JSON
	// decoder's per-field garbage.
	if avg > 6 {
		t.Fatalf("warm per-cell segment load allocates %.1f times, want <= 6", avg)
	}

	// The whole warm assembly — fingerprinting, planner fetch pool,
	// loads, row placement — measured per cell: the figure a 10⁵-cell
	// warm open multiplies.
	warmGrid := func() {
		g, err := runGridIncremental(na, 0, store)
		if err != nil {
			t.Fatal(err)
		}
		if len(g.Rows) != len(cells) {
			t.Fatal("short grid")
		}
	}
	warmGrid()
	perCell := testing.AllocsPerRun(10, warmGrid) / float64(len(cells))
	t.Logf("warm grid assembly: %.1f allocs per cell", perCell)
	if perCell > 30 {
		t.Fatalf("warm grid assembly allocates %.1f times per cell, want <= 30", perCell)
	}
}
