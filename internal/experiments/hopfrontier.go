package experiments

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/scenario"
	"repro/internal/tcpsim"
	"repro/internal/units"
	"repro/internal/workload"
)

// hopFrontierAxes is the multi-hop grid behind ext-hopfrontier: the §5
// coherent-scattering transfer pushed through an edge→WAN chain, sweeping
// the edge uplink and the WAN RTT. Four measured cells keep the artifact
// cheap enough for RunAll's quick path while still crossing the
// placement frontier.
func hopFrontierAxes() workload.Axes {
	return workload.Axes{
		Duration:      2 * time.Second,
		Concurrencies: []int{4},
		ParallelFlows: []int{8},
		TransferSizes: []units.ByteSize{2 * units.GB},
		Net:           tcpsim.DefaultConfig(),
		Path: tcpsim.Path{
			{Role: tcpsim.HopEdge, Capacity: 10 * units.Gbps, RTT: 2 * time.Millisecond},
			{Role: tcpsim.HopWAN, Capacity: 100 * units.Gbps, RTT: 30 * time.Millisecond, CrossFraction: 0.3},
		},
		EdgeCaps: []units.BitRate{2 * units.Gbps, 25 * units.Gbps},
		WANRTTs:  []time.Duration{10 * time.Millisecond, 60 * time.Millisecond},
	}
}

// HopFrontier decides placement — stream-direct, edge-prefilter, or
// store-and-forward — for the §5 workload over a measured edge→WAN hop
// grid, and reports where on the (edge capacity × WAN RTT) plane the
// verdict flips. This is the multi-hop extension of the gain map: the
// same decision calculus, but judged against the composed per-cell
// bottleneck with per-hop attribution.
func HopFrontier() (Artifact, error) {
	g, err := workload.RunGridCached(hopFrontierAxes(), 0)
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: hop frontier grid: %w", err)
	}
	p := core.Params{
		UnitSize:              2 * units.GB,
		ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(17e12),
		LocalRate:             5 * units.TeraFLOPS,
		RemoteRate:            100 * units.TeraFLOPS,
		Bandwidth:             25 * units.Gbps,
		TransferRate:          2 * units.GBps,
		Theta:                 1,
	}
	ds, err := scenario.DecidePlacementGrid(g, p, core.PlacementOpts{PrefilterFactor: 0.25})
	if err != nil {
		return Artifact{}, fmt.Errorf("experiments: hop frontier: %w", err)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "workload: coherent scattering (2 GB units, 17 TFLOP/GB), edge->WAN chain\n")
	fmt.Fprintf(&b, "grid: %d measured cells, edge uplink x WAN RTT; prefilter factor 0.25\n\n",
		len(ds))
	b.WriteString(scenario.RenderPlacementGrid(ds))

	t := &plot.Table{Header: []string{"edge_cap", "wan_rtt", "placement", "bottleneck", "gain"}}
	for _, d := range ds {
		bottleneck := "?"
		for _, h := range d.Placement.Hops {
			if h.Bottleneck {
				bottleneck = h.Name
				break
			}
		}
		t.AddRow(d.Row.Cell.EdgeCap.String(), d.Row.Cell.WANRTT.String(),
			d.Placement.Placement.String(), bottleneck,
			fmt.Sprintf("%.3f", d.Decision.Gain))
	}
	var csv bytes.Buffer
	_ = t.WriteCSV(&csv)

	title := "Placement frontier over the edge->WAN hop chain [extension]"
	return Artifact{ID: "ext-hopfrontier", Title: title, Text: b.String(), CSV: csv.String()}, nil
}
