package workload

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/tcpsim"
	"repro/internal/units"
)

// fastAxes is a small multi-axis grid for unit tests: 2 RTTs × 2 buffers
// × 2 flow counts × 2 concurrencies = 16 cells of 1-second experiments.
func fastAxes() Axes {
	return Axes{
		Duration:      1 * time.Second,
		Concurrencies: []int{2, 6},
		ParallelFlows: []int{2, 8},
		TransferSizes: []units.ByteSize{0.5 * units.GB},
		RTTs:          []time.Duration{8 * time.Millisecond, 32 * time.Millisecond},
		Buffers:       []units.ByteSize{0, 2 * units.MB},
		Strategy:      SpawnSimultaneous,
		Net:           tcpsim.DefaultConfig(),
	}
}

func TestAxesSizeAndCells(t *testing.T) {
	a := fastAxes()
	if got := a.NetPoints(); got != 4 {
		t.Fatalf("NetPoints = %d, want 4", got)
	}
	if got := a.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	cells := a.Cells()
	if len(cells) != 16 {
		t.Fatalf("len(Cells) = %d, want 16", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has Index %d", i, c.Index)
		}
	}
	// Network axes are outermost: the first four cells share NetIndex 0
	// (rtt=8ms, buffer=auto) and walk the Table 2 plane P-outer,
	// conc-inner, matching sweep order.
	want := []struct {
		netIdx, p, conc int
		rtt             time.Duration
		buf             units.ByteSize
	}{
		{0, 2, 2, 8 * time.Millisecond, 0},
		{0, 2, 6, 8 * time.Millisecond, 0},
		{0, 8, 2, 8 * time.Millisecond, 0},
		{0, 8, 6, 8 * time.Millisecond, 0},
		{1, 2, 2, 8 * time.Millisecond, 2 * units.MB},
	}
	for i, w := range want {
		c := cells[i]
		if c.NetIndex != w.netIdx || c.ParallelFlows != w.p || c.Concurrency != w.conc ||
			c.RTT != w.rtt || c.Buffer != w.buf {
			t.Fatalf("cell %d = %+v, want %+v", i, c, w)
		}
	}
	// Last cell: every axis at its final value.
	last := cells[15]
	if last.NetIndex != 3 || last.RTT != 32*time.Millisecond || last.Buffer != 2*units.MB ||
		last.ParallelFlows != 8 || last.Concurrency != 6 {
		t.Fatalf("last cell = %+v", last)
	}
}

func TestAxesNormalizationFillsNetworkAxes(t *testing.T) {
	a := Axes{
		Duration:      time.Second,
		Concurrencies: []int{1},
		ParallelFlows: []int{2},
		TransferSizes: []units.ByteSize{units.MB},
		Net:           tcpsim.DefaultConfig(),
	}
	n := a.normalized()
	if len(n.RTTs) != 1 || n.RTTs[0] != a.Net.BaseRTT {
		t.Errorf("RTTs = %v", n.RTTs)
	}
	if len(n.Buffers) != 1 || n.Buffers[0] != a.Net.Buffer {
		t.Errorf("Buffers = %v", n.Buffers)
	}
	if len(n.CCs) != 1 || n.CCs[0] != a.Net.CC {
		t.Errorf("CCs = %v", n.CCs)
	}
	if len(n.CrossFractions) != 1 || n.CrossFractions[0] != a.Net.Cross.Fraction {
		t.Errorf("CrossFractions = %v", n.CrossFractions)
	}
	if a.Size() != 1 {
		t.Errorf("Size = %d, want 1", a.Size())
	}
	// Explicit singleton axes fingerprint identically to implied ones.
	explicit := a
	explicit.RTTs = []time.Duration{a.Net.BaseRTT}
	explicit.CCs = []tcpsim.CongestionControl{a.Net.CC}
	if a.Fingerprint() != explicit.Fingerprint() {
		t.Error("normalization changed the fingerprint")
	}
}

func TestAxesValidate(t *testing.T) {
	a := fastAxes()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		break_ func(*Axes)
	}{
		{"Concurrencies", func(a *Axes) { a.Concurrencies = nil }},
		{"ParallelFlows", func(a *Axes) { a.ParallelFlows = nil }},
		{"TransferSizes", func(a *Axes) { a.TransferSizes = nil }},
	} {
		bad := fastAxes()
		tc.break_(&bad)
		err := bad.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.name) {
			t.Errorf("%s: err = %v", tc.name, err)
		}
		if _, err := RunGrid(bad); err == nil {
			t.Errorf("%s: RunGrid accepted invalid axes", tc.name)
		}
	}
}

func TestAxesFingerprintDistinguishesAxes(t *testing.T) {
	base := fastAxes()
	if !strings.HasPrefix(base.Fingerprint(), "grid;") {
		t.Fatalf("fingerprint %q lacks grid; prefix", base.Fingerprint())
	}
	seen := map[string]string{base.Fingerprint(): "base"}
	for name, mutate := range map[string]func(*Axes){
		"rtts":    func(a *Axes) { a.RTTs = []time.Duration{8 * time.Millisecond} },
		"buffers": func(a *Axes) { a.Buffers = []units.ByteSize{units.MB} },
		"ccs":     func(a *Axes) { a.CCs = []tcpsim.CongestionControl{tcpsim.Cubic} },
		"crosses": func(a *Axes) { a.CrossFractions = []float64{0.2} },
		"sizes":   func(a *Axes) { a.TransferSizes = []units.ByteSize{units.GB} },
		"conc":    func(a *Axes) { a.Concurrencies = []int{1} },
		"flows":   func(a *Axes) { a.ParallelFlows = []int{4} },
		"seed":    func(a *Axes) { a.Net.Seed = 99 },
		"strat":   func(a *Axes) { a.Strategy = SpawnScheduled },
		"keep":    func(a *Axes) { a.KeepClientResults = true },
	} {
		mod := fastAxes()
		mutate(&mod)
		fp := mod.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s: %q", name, prev, fp)
		}
		seen[fp] = name
	}
}

// TestGridMatchesSweep holds the two executors together: lowering a
// Table 2 sweep onto the grid must produce bit-identical rows (same
// cells, same order, same per-cell seeds).
func TestGridMatchesSweep(t *testing.T) {
	cfg := fastSweep()
	sweep, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := RunGridParallel(AxesFromSweep(cfg), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Rows) != len(sweep.Rows) {
		t.Fatalf("grid has %d rows, sweep %d", len(grid.Rows), len(sweep.Rows))
	}
	stripped := make([]SweepRow, len(grid.Rows))
	for i := range grid.Rows {
		if grid.Rows[i].Cell.NetIndex != 0 {
			t.Fatalf("row %d: NetIndex %d on a single-point grid", i, grid.Rows[i].Cell.NetIndex)
		}
		stripped[i] = grid.Rows[i].SweepRow
	}
	want, err := json.Marshal(sweep.Rows)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("grid rows not byte-identical to sweep rows")
	}
}

// TestGridDeterminism extends the bit-identity contract to multi-axis
// grids: serial, parallel at several widths, and cached execution all
// produce byte-identical rows.
func TestGridDeterminism(t *testing.T) {
	a := fastAxes()
	encode := func(rows []GridRow) string {
		b, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	baseline, err := RunGrid(a)
	if err != nil {
		t.Fatal(err)
	}
	want := encode(baseline.Rows)

	for _, workers := range []int{2, 4, 0} {
		g, err := RunGridParallel(a, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if encode(g.Rows) != want {
			t.Errorf("workers=%d: rows not byte-identical to serial RunGrid", workers)
		}
	}
	cached, err := NewGridCache().Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if encode(cached.Rows) != want {
		t.Error("cached grid rows not byte-identical to serial RunGrid")
	}

	// Mixed cached/fresh assembly: pre-seed the cell store with a
	// sub-grid, then assemble the full grid from loaded + freshly
	// executed cells — still byte-identical to the cold serial run.
	dir := t.TempDir()
	seeder := NewGridCache()
	seeder.SetDiskDir(dir)
	if _, err := seeder.Get(subAxes(), 0); err != nil {
		t.Fatal(err)
	}
	mixed := NewGridCache()
	mixed.SetDiskDir(dir)
	g, err := mixed.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if encode(g.Rows) != want {
		t.Error("mixed cached/fresh grid rows not byte-identical to serial RunGrid")
	}
}

// TestGridSeedsVaryAcrossNetPoints guards the per-cell seed derivation:
// cells at different network points must not reuse loss-randomization
// seeds, and cells at the base network point (every overridable field
// equal to the Net's own value) must keep the sweep's formula exactly.
func TestGridSeedsVaryAcrossNetPoints(t *testing.T) {
	a := fastAxes()
	seeds := make(map[int64]GridCell)
	for _, c := range a.Cells() {
		e := a.experiment(c)
		if prev, dup := seeds[e.Net.Seed]; dup {
			t.Fatalf("cells %+v and %+v share seed %d", prev, c, e.Net.Seed)
		}
		seeds[e.Net.Seed] = c
		if e.Net.BaseRTT != c.RTT || e.Net.Buffer != c.Buffer || e.Net.CC != c.CC ||
			e.Net.Cross.Fraction != c.CrossFraction {
			t.Fatalf("experiment net %+v does not match cell %+v", e.Net, c)
		}
	}

	// The base network point reduces to the Table 2 sweep's seed formula
	// (offset 0) — what keeps AxesFromSweep grids bit-identical to
	// RunSweep.
	sweepAxes := AxesFromSweep(fastSweep()).normalized()
	for _, c := range sweepAxes.Cells() {
		e := sweepAxes.experiment(c)
		want := sweepAxes.Net.Seed + int64(c.Concurrency*100+c.ParallelFlows)
		if e.Net.Seed != want {
			t.Fatalf("base-point seed = %d, want sweep formula %d", e.Net.Seed, want)
		}
	}
}

// TestGridSeedsAreGridIndependent is the invariant behind cell-granular
// reuse: a cell's seed is a pure function of its own coordinates and the
// base Net — never of its position within a particular Axes — so the
// same cell carries the same seed in a superset grid and a sub-grid.
// Transfer size deliberately never enters the seed (the sweep formula
// has no size term), so cells differing only in size share offsets.
func TestGridSeedsAreGridIndependent(t *testing.T) {
	super := fastAxes().normalized()
	sub := subAxes().normalized()
	superSeeds := make(map[string]int64)
	key := func(c GridCell) string {
		return fmt.Sprintf("%v/%v/%v/%g/%d/%d", c.RTT, c.Buffer, c.CC, c.CrossFraction, c.Concurrency, c.ParallelFlows)
	}
	for _, c := range super.Cells() {
		superSeeds[key(c)] = super.experiment(c).Net.Seed
	}
	for _, c := range sub.Cells() {
		want, ok := superSeeds[key(c)]
		if !ok {
			t.Fatalf("sub-grid cell %+v absent from superset", c)
		}
		if got := sub.experiment(c).Net.Seed; got != want {
			t.Errorf("cell %+v: sub-grid seed %d != superset seed %d", c, got, want)
		}
	}

	// Size-only variation shares the offset: same network deviation, same
	// Table 2 coordinates, different size ⇒ same seed.
	multi := fastAxes()
	multi.TransferSizes = []units.ByteSize{0.25 * units.GB, 0.5 * units.GB}
	multi = multi.normalized()
	bySize := make(map[string][]int64)
	for _, c := range multi.Cells() {
		k := key(c)
		bySize[k] = append(bySize[k], multi.experiment(c).Net.Seed)
	}
	for k, seeds := range bySize {
		if len(seeds) != 2 || seeds[0] != seeds[1] {
			t.Errorf("cells at %s across sizes have seeds %v, want equal", k, seeds)
		}
	}
}

// TestGridCellsVary sanity-checks that the axes actually change the
// dynamics: worst-case FCT must differ across RTTs and buffers.
func TestGridCellsVary(t *testing.T) {
	a := fastAxes()
	g, err := RunGridParallel(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	worstByNet := make(map[int]time.Duration)
	for _, row := range g.Rows {
		if row.Cell.Concurrency == 6 && row.Cell.ParallelFlows == 8 {
			worstByNet[row.Cell.NetIndex] = row.Worst
		}
	}
	distinct := make(map[time.Duration]bool)
	for _, w := range worstByNet {
		distinct[w] = true
	}
	if len(distinct) < 2 {
		t.Errorf("worst FCT identical across all %d network points: %v", len(worstByNet), worstByNet)
	}
}
