package scenario

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/core"
)

const lcls2JSON = `{
  "workloads": [
    {
      "name": "Coherent Scattering (XPCS, XSVS)",
      "unit_size": "2GB",
      "complexity_flop_per_gb": 17e12,
      "local": "5TF",
      "remote": "100TF",
      "bandwidth": "25Gbps",
      "transfer_rate": "2GB/s",
      "generation_rate": "2GB/s",
      "tier": 2
    },
    {
      "name": "Liquid Scattering",
      "unit_size": "4GB",
      "complexity_flop_per_gb": 5e12,
      "local": "5TF",
      "remote": "100TF",
      "bandwidth": "25Gbps",
      "transfer_rate": "3GB/s",
      "generation_rate": "4GB/s",
      "tier": 2
    }
  ]
}`

func TestLoadAndDecidePortfolio(t *testing.T) {
	f, err := Load(strings.NewReader(lcls2JSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Workloads) != 2 {
		t.Fatalf("workloads = %d", len(f.Workloads))
	}
	rows, err := DecideAll(f)
	if err != nil {
		t.Fatal(err)
	}
	// Coherent scattering: remote wins (gain ~5) within Tier 2.
	cs := rows[0]
	if cs.Decision.Choice != core.ChooseRemote {
		t.Errorf("CS decision = %v (%s)", cs.Decision.Choice, cs.Decision.Reason)
	}
	// Liquid scattering generates 4 GB/s but transfers at 3 GB/s:
	// sustained check fails, falls back to local.
	ls := rows[1]
	if ls.Decision.SustainedOK {
		t.Error("LS sustained check should fail")
	}
	if ls.Decision.Choice != core.ChooseLocal {
		t.Errorf("LS decision = %v (%s)", ls.Decision.Choice, ls.Decision.Reason)
	}

	out := Render(rows)
	for _, want := range []string{"Coherent Scattering", "remote", "local", "Gain"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDefaultThetaIsStreaming(t *testing.T) {
	f, err := Load(strings.NewReader(lcls2JSON))
	if err != nil {
		t.Fatal(err)
	}
	p, err := f.Workloads[0].Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Theta != 1 {
		t.Fatalf("default theta = %v, want 1", p.Theta)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty doc", `{}`},
		{"empty list", `{"workloads": []}`},
		{"bad json", `{"workloads": [`},
		{"unknown field", `{"workloads":[{"name":"x","surprise":1}]}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(c.in)); err == nil {
				t.Error("accepted")
			}
		})
	}
}

func TestDecideAllFieldErrors(t *testing.T) {
	mk := func(mutate func(*Workload)) *File {
		w := Workload{
			Name: "w", UnitSize: "1GB", ComplexityFLOPPerGB: 1e12,
			Local: "1TF", Remote: "10TF", Bandwidth: "25Gbps",
			TransferRate: "1GB/s",
		}
		mutate(&w)
		return &File{Workloads: []Workload{w}}
	}
	cases := []struct {
		name   string
		mutate func(*Workload)
	}{
		{"bad size", func(w *Workload) { w.UnitSize = "potato" }},
		{"bad local", func(w *Workload) { w.Local = "x" }},
		{"bad remote", func(w *Workload) { w.Remote = "x" }},
		{"bad bandwidth", func(w *Workload) { w.Bandwidth = "x" }},
		{"bad rate", func(w *Workload) { w.TransferRate = "x" }},
		{"bad gen", func(w *Workload) { w.GenerationRate = "x" }},
		{"bad tier", func(w *Workload) { w.Tier = 9 }},
		{"negative theta", func(w *Workload) { w.Theta = 0.2 }},
		{"alpha above 1", func(w *Workload) { w.TransferRate = "99GB/s" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := DecideAll(mk(c.mutate)); err == nil {
				t.Error("accepted")
			}
		})
	}
	if _, err := DecideAll(nil); !errors.Is(err, ErrNoWorkloads) {
		t.Errorf("nil file err = %v", err)
	}
}
