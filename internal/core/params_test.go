package core

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// paperParams builds a parameter set shaped like the paper's case study:
// 2 GB units (one second of coherent-scattering output), 34 TFLOP of
// work per unit, on a 25 Gbps link.
func paperParams() Params {
	return Params{
		UnitSize:              2 * units.GB,
		ComplexityFLOPPerByte: ComplexityFLOPPerGB(17e12), // 34 TFLOP over 2 GB
		LocalRate:             5 * units.TeraFLOPS,
		RemoteRate:            100 * units.TeraFLOPS,
		Bandwidth:             25 * units.Gbps,
		TransferRate:          2 * units.GBps,
		Theta:                 1,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := paperParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Params)
		want   error
	}{
		{"zero size", func(p *Params) { p.UnitSize = 0 }, ErrNonPositiveSize},
		{"negative complexity", func(p *Params) { p.ComplexityFLOPPerByte = -1 }, ErrNegativeComplexity},
		{"zero local", func(p *Params) { p.LocalRate = 0 }, ErrNonPositiveCompute},
		{"zero remote", func(p *Params) { p.RemoteRate = 0 }, ErrNonPositiveCompute},
		{"zero bandwidth", func(p *Params) { p.Bandwidth = 0 }, ErrNonPositiveBandwidth},
		{"zero transfer", func(p *Params) { p.TransferRate = 0 }, ErrNonPositiveTransfer},
		{"theta below 1", func(p *Params) { p.Theta = 0.5 }, ErrBadTheta},
		{"alpha above 1", func(p *Params) { p.TransferRate = 4 * units.GBps }, ErrTransferExceedsLink},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := paperParams()
			c.mutate(&p)
			err := p.Validate()
			if !errors.Is(err, c.want) {
				t.Errorf("Validate() = %v, want %v", err, c.want)
			}
		})
	}
}

func TestCoefficients(t *testing.T) {
	p := paperParams()
	// alpha = 2 GB/s over 3.125 GB/s = 0.64 — the paper's 64% utilization.
	if got := p.Alpha(); math.Abs(got-0.64) > 1e-12 {
		t.Errorf("Alpha = %v, want 0.64", got)
	}
	if got := p.R(); math.Abs(got-20) > 1e-12 {
		t.Errorf("R = %v, want 20", got)
	}
}

func TestWithSetters(t *testing.T) {
	p := paperParams()
	q := p.WithAlpha(0.5)
	if math.Abs(q.Alpha()-0.5) > 1e-12 {
		t.Errorf("WithAlpha: %v", q.Alpha())
	}
	if p.Alpha() != 0.64 {
		t.Error("WithAlpha mutated receiver")
	}
	q = p.WithR(3)
	if math.Abs(q.R()-3) > 1e-12 {
		t.Errorf("WithR: %v", q.R())
	}
	q = p.WithTheta(2.5)
	if q.Theta != 2.5 || p.Theta != 1 {
		t.Errorf("WithTheta: %v / %v", q.Theta, p.Theta)
	}
}

func TestComplexityFLOPPerGB(t *testing.T) {
	// 17 TFLOP/GB -> 17e3 FLOP per byte.
	if got := ComplexityFLOPPerGB(17e12); got != 17e3 {
		t.Errorf("got %v", got)
	}
}

func TestParamsString(t *testing.T) {
	s := paperParams().String()
	for _, want := range []string{"alpha=0.640", "r=20.000", "theta=1.000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: Alpha is scale-invariant — scaling both transfer rate and
// bandwidth by the same factor leaves alpha unchanged.
func TestQuickAlphaScaleInvariant(t *testing.T) {
	f := func(k uint8) bool {
		scale := float64(k%100) + 1
		p := paperParams()
		q := p
		q.TransferRate = units.ByteRate(float64(p.TransferRate) * scale)
		q.Bandwidth = units.BitRate(float64(p.Bandwidth) * scale)
		return math.Abs(p.Alpha()-q.Alpha()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
