package fsfault

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestDisarmedPassThrough(t *testing.T) {
	Reset()
	var buf bytes.Buffer
	n, err := Write("nowhere", &buf, []byte("hello"))
	if n != 5 || err != nil {
		t.Fatalf("Write = (%d, %v), want (5, nil)", n, err)
	}
	if err := Hit("nowhere"); err != nil {
		t.Fatalf("Hit = %v, want nil", err)
	}
}

func TestWriteShortThenError(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{AllowBytes: 7, Err: ErrInjectedENOSPC})

	var buf bytes.Buffer
	// First write fits entirely inside the allowance.
	if n, err := Write("p", &buf, []byte("1234")); n != 4 || err != nil {
		t.Fatalf("first Write = (%d, %v), want (4, nil)", n, err)
	}
	// Second crosses it: 3 more bytes allowed, then the fault fires.
	n, err := Write("p", &buf, []byte("abcdef"))
	if n != 3 || !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("crossing Write = (%d, %v), want (3, ENOSPC)", n, err)
	}
	if got := buf.String(); got != "1234abc" {
		t.Fatalf("bytes on disk = %q, want the torn prefix %q", got, "1234abc")
	}
	// A persistent fault keeps firing with zero further bytes allowed.
	if n, err := Write("p", &buf, []byte("x")); n != 0 || !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("post-exhaustion Write = (%d, %v), want (0, ENOSPC)", n, err)
	}
	if Fired("p") != 2 {
		t.Fatalf("Fired = %d, want 2", Fired("p"))
	}
}

func TestWriteOnceDisarmsAfterFiring(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{Err: ErrInjectedEIO, Once: true})

	var buf bytes.Buffer
	if _, err := Write("p", &buf, []byte("abc")); !errors.Is(err, ErrInjectedEIO) {
		t.Fatalf("first Write err = %v, want EIO", err)
	}
	// The retry goes through untouched: the fault was transient.
	if n, err := Write("p", &buf, []byte("abc")); n != 3 || err != nil {
		t.Fatalf("retry Write = (%d, %v), want (3, nil)", n, err)
	}
	if Fired("p") != 1 {
		t.Fatalf("Fired = %d, want 1", Fired("p"))
	}
}

func TestHitCallAllowance(t *testing.T) {
	Reset()
	defer Reset()
	Enable("p", Fault{AllowCalls: 2})
	for i := 0; i < 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatalf("call %d: %v, want nil", i, err)
		}
	}
	if err := Hit("p"); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("third call = %v, want injected failure", err)
	}
}

func TestRenameFailureLeavesDestinationUntouched(t *testing.T) {
	Reset()
	defer Reset()
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	Enable("p", Fault{})
	if err := Rename("p", src, dst); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("Rename = %v, want injected failure", err)
	}
	if _, err := os.Stat(dst); !os.IsNotExist(err) {
		t.Fatalf("destination exists after failed rename (stat err %v)", err)
	}
	Disable("p")
	if err := Rename("p", src, dst); err != nil {
		t.Fatalf("disarmed Rename = %v", err)
	}
}

func TestArmFromSpec(t *testing.T) {
	Reset()
	defer Reset()
	if err := armFromSpec("a.write=enospc@10;b.rename=fail@0,once; c=short@3"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if n, err := Write("a.write", &buf, make([]byte, 20)); n != 10 || !errors.Is(err, ErrInjectedENOSPC) {
		t.Fatalf("a.write = (%d, %v), want (10, ENOSPC)", n, err)
	}
	if err := Hit("b.rename"); !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("b.rename = %v, want injected failure", err)
	}
	if err := Hit("b.rename"); err != nil {
		t.Fatalf("b.rename once-clause fired twice: %v", err)
	}
	if n, err := Write("c", &buf, []byte("abcdef")); n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("c = (%d, %v), want (3, ErrShortWrite)", n, err)
	}

	for _, bad := range []string{"noequals", "p=weird@3", "p=eio@x", "p=eio"} {
		if err := armFromSpec(bad); err == nil {
			t.Errorf("armFromSpec(%q) accepted a malformed spec", bad)
		}
	}
}
