package plot

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/stats"
)

// WriteSeriesCSV writes one or more series to w as CSV with an x column
// followed by one y column per series. Series are aligned by index; a
// shorter series leaves trailing cells empty. The x values of the first
// series are used for the shared x column (the usual case is identical x
// across series, e.g. the utilization sweep).
func WriteSeriesCSV(w io.Writer, xName string, series ...stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("plot: no series to write")
	}
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(series)+1)
	header = append(header, xName)
	maxLen := 0
	for i, s := range series {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("series%d", i+1)
		}
		header = append(header, name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("plot: writing CSV header: %w", err)
	}
	for row := 0; row < maxLen; row++ {
		rec := make([]string, 0, len(series)+1)
		if row < series[0].Len() {
			rec = append(rec, formatFloat(series[0].X[row]))
		} else {
			rec = append(rec, "")
		}
		for _, s := range series {
			if row < s.Len() {
				rec = append(rec, formatFloat(s.Y[row]))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("plot: writing CSV row %d: %w", row, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("plot: flushing CSV: %w", err)
	}
	return nil
}

// WriteCDFCSV writes CDF points as a two-column CSV (x, p).
func WriteCDFCSV(w io.Writer, name string, pts []stats.CDFPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{name, "cumulative_probability"}); err != nil {
		return fmt.Errorf("plot: writing CDF header: %w", err)
	}
	for _, p := range pts {
		if err := cw.Write([]string{formatFloat(p.X), formatFloat(p.P)}); err != nil {
			return fmt.Errorf("plot: writing CDF row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("plot: flushing CDF CSV: %w", err)
	}
	return nil
}

// WriteBarsCSV writes bars as a two-column CSV (label, value).
func WriteBarsCSV(w io.Writer, valueName string, bars []Bar) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"label", valueName}); err != nil {
		return fmt.Errorf("plot: writing bar header: %w", err)
	}
	for _, b := range bars {
		if err := cw.Write([]string{b.Label, formatFloat(b.Value)}); err != nil {
			return fmt.Errorf("plot: writing bar row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("plot: flushing bar CSV: %w", err)
	}
	return nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Table renders rows of cells as an aligned plain-text table with a
// header rule — used for the paper's Tables 1-3.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	if cols == 0 {
		return "(empty table)\n"
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	var sb []byte
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			sb = append(sb, []byte(fmt.Sprintf("%-*s", widths[i], c))...)
			if i != cols-1 {
				sb = append(sb, ' ', '|', ' ')
			}
		}
		sb = append(sb, '\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		for i := 0; i < cols; i++ {
			for j := 0; j < widths[i]; j++ {
				sb = append(sb, '-')
			}
			if i != cols-1 {
				sb = append(sb, '-', '+', '-')
			}
		}
		sb = append(sb, '\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return string(sb)
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.Header) > 0 {
		if err := cw.Write(t.Header); err != nil {
			return fmt.Errorf("plot: writing table header: %w", err)
		}
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return fmt.Errorf("plot: writing table row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("plot: flushing table CSV: %w", err)
	}
	return nil
}
