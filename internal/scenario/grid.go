package scenario

// Grid decisions: evaluate the paper's stream-vs-store model over a
// measured workload.GridResult, one decision per grid cell, and report
// where the break-even flips across each axis. This is the quantitative
// form of the cross-facility observation (George et al. 2025) that the
// same pipeline streams at one operating point and stages at another:
// the congestion sweep supplies the measured effective transfer rate per
// cell, and the decision model turns it into local/remote/infeasible.

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/units"
	"repro/internal/workload"
)

// GridDecision is one grid cell's measured behavior coupled with the
// decision the model reaches at that operating point.
type GridDecision struct {
	Row      workload.GridRow
	Params   core.Params
	Decision core.Decision
}

// DecideGrid evaluates the stream-vs-store decision across a measured
// grid. base supplies the workload's compute-side parameters (complexity,
// local and remote rates, θ); per cell, the unit size is the cell's
// transfer size, the bandwidth is the grid's link capacity, and the
// effective transfer rate is the congestion-degraded rate the sweep
// measured — TransferSize over the worst-case FCT, the paper's
// conservative α. Rows keep grid order, so Flips sees cells adjacent
// along each axis consecutively.
func DecideGrid(g *workload.GridResult, base core.Params, opts core.DecideOpts) ([]GridDecision, error) {
	if g == nil || len(g.Rows) == 0 {
		return nil, fmt.Errorf("scenario: empty grid")
	}
	out := make([]GridDecision, 0, len(g.Rows))
	for _, row := range g.Rows {
		cap := cellCapacity(g.Axes, row.Cell)
		rate := row.EffectiveRate(cap)
		if rate <= 0 {
			return nil, fmt.Errorf("scenario: grid cell %d has non-positive worst FCT", row.Cell.Index)
		}
		p := base
		p.UnitSize = row.Cell.TransferSize
		p.Bandwidth = cap
		p.TransferRate = rate
		d, err := core.Decide(p, opts)
		if err != nil {
			return nil, fmt.Errorf("scenario: grid cell %d: %w", row.Cell.Index, err)
		}
		out = append(out, GridDecision{Row: row, Params: p, Decision: d})
	}
	return out, nil
}

// cellCapacity is the link capacity backing one cell's measurement:
// the composed bottleneck on a multi-hop grid (GridCell.Capacity),
// the grid's flat base link otherwise. Every decision over a grid
// row goes through this so multi-hop cells are judged against the
// bottleneck that actually carried them.
func cellCapacity(a workload.Axes, c workload.GridCell) units.BitRate {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return a.Net.Capacity
}

// Flip marks two cells adjacent along one axis (all other coordinates
// equal) whose decisions differ — a break-even boundary of the grid.
type Flip struct {
	// Axis names the coordinate that changed ("rtt", "buffer", ...).
	Axis     string
	From, To GridDecision
}

// gridAxisNames lists the flip axes of a flat grid in report order.
// These names appear in archived portfolio JSON (frontier strings), so
// they are frozen.
var gridAxisNames = []string{"size", "rtt", "buffer", "cc", "cross", "flows", "conc"}

// hopAxisNames lists the flip axes of a multi-hop grid: the hop knobs
// replace the flat link axes (rtt/buffer/cross are composed OUTPUTS
// there, not independent coordinates).
var hopAxisNames = []string{"size", "ecap", "wrtt", "ibuf", "cc", "flows", "conc"}

// axisNamesFor picks the flip-axis vocabulary for a decision's grid.
// Multi-hop cells are recognizable by their composed Capacity, which
// flat cells always leave 0.
func axisNamesFor(d GridDecision) []string {
	if d.Row.Cell.Capacity > 0 {
		return hopAxisNames
	}
	return gridAxisNames
}

// axisValue renders one decision's coordinate on the named axis.
func axisValue(d GridDecision, axis string) string {
	c := d.Row.Cell
	switch axis {
	case "size":
		return c.TransferSize.String()
	case "rtt":
		return c.RTT.String()
	case "buffer":
		return BufferLabel(c.Buffer)
	case "cc":
		return c.CC.String()
	case "cross":
		return fmt.Sprintf("%g", c.CrossFraction)
	case "flows":
		return fmt.Sprintf("%d", c.ParallelFlows)
	case "conc":
		return fmt.Sprintf("%d", c.Concurrency)
	case "ecap":
		if c.EdgeCap == 0 {
			return "base"
		}
		return c.EdgeCap.String()
	case "wrtt":
		if c.WANRTT == 0 {
			return "base"
		}
		return c.WANRTT.String()
	case "ibuf":
		return BufferLabel(c.IngressBuffer)
	default:
		return "?"
	}
}

// BufferLabel names a buffer-axis value; 0 is tcpsim's half-BDP
// default. Shared by every grid renderer so "auto" means the same thing
// everywhere.
func BufferLabel(b units.ByteSize) string {
	if b == 0 {
		return "auto"
	}
	return b.String()
}

// otherCoords keys every coordinate except the named axis.
func otherCoords(d GridDecision, axis string) string {
	names := axisNamesFor(d)
	parts := make([]string, 0, len(names)-1)
	for _, a := range names {
		if a != axis {
			parts = append(parts, a+"="+axisValue(d, a))
		}
	}
	return strings.Join(parts, " ")
}

// Flips scans decisions in grid order and returns every break-even
// boundary: adjacent cells along one axis, all other coordinates equal,
// with differing choices. Grid row order keeps each axis's cells in
// axis-value order within a fixed remainder, so one ordered pass per
// axis finds every boundary.
func Flips(ds []GridDecision) []Flip {
	if len(ds) == 0 {
		return nil
	}
	var flips []Flip
	for _, axis := range axisNamesFor(ds[0]) {
		last := make(map[string]GridDecision)
		for _, d := range ds {
			key := otherCoords(d, axis)
			if prev, ok := last[key]; ok && prev.Decision.Choice != d.Decision.Choice {
				flips = append(flips, Flip{Axis: axis, From: prev, To: d})
			}
			last[key] = d
		}
	}
	return flips
}

// String renders one flip as a report line.
func (f Flip) String() string {
	return fmt.Sprintf("%s %s -> %s: %s -> %s (%s)",
		f.Axis, axisValue(f.From, f.Axis), axisValue(f.To, f.Axis),
		f.From.Decision.Choice, f.To.Decision.Choice, otherCoords(f.To, f.Axis))
}

// FlipReport renders the break-even flip block — the same lines every
// grid renderer prints — with each line prefixed by indent.
func FlipReport(ds []GridDecision, indent string) string {
	var b strings.Builder
	flips := Flips(ds)
	if len(flips) == 0 {
		fmt.Fprintf(&b, "%sbreak-even flips: none (decision uniform across the grid)\n", indent)
		return b.String()
	}
	fmt.Fprintf(&b, "%sbreak-even flips (%d):\n", indent, len(flips))
	for _, f := range flips {
		fmt.Fprintf(&b, "%s  %s\n", indent, f)
	}
	return b.String()
}

// RenderGrid formats grid decisions as an aligned table followed by the
// break-even flip report.
func RenderGrid(ds []GridDecision) string {
	t := &plot.Table{Header: []string{
		"Size", "RTT", "Buffer", "CC", "Cross", "Conc", "P",
		"Worst", "R_eff", "T_local", "T_pct", "Gain", "Decision",
	}}
	for _, d := range ds {
		c := d.Row.Cell
		t.AddRow(
			c.TransferSize.String(),
			c.RTT.String(),
			BufferLabel(c.Buffer),
			c.CC.String(),
			fmt.Sprintf("%g", c.CrossFraction),
			fmt.Sprintf("%d", c.Concurrency),
			fmt.Sprintf("%d", c.ParallelFlows),
			d.Row.Worst.Round(time.Millisecond).String(),
			d.Params.TransferRate.String(),
			d.Decision.Breakdown.TLocal.Round(time.Millisecond).String(),
			d.Decision.Breakdown.TPct.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", d.Decision.Gain),
			d.Decision.Choice.String(),
		)
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString(FlipReport(ds, ""))
	return b.String()
}
