package workload

// Multi-process torture tests: the crash-safety claims that cannot be
// proven in-process. Each test re-execs this test binary as child
// processes (the standard re-exec pattern: the child runs only
// TestTortureChildProcess, selected by environment variables) so that
// real, separate processes append to one cache directory, really die
// mid-write (fsfault kill faults, armed through the FSFAULT env var),
// and really release their flocks on death.
//
// The parent asserts the paper-reproduction invariants end to end:
// every cell readable, rows byte-identical to a serial run, bounded
// recomputation after a crash, and compaction reclaiming all dead
// space. scripts/crashcheck.sh repeats the same story against the real
// ssslab binary with SIGKILL instead of injected kills.

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/internal/fsfault"
)

// Child-selection environment variables.
const (
	tortureDirEnv     = "REPRO_TORTURE_DIR"
	tortureOpEnv      = "REPRO_TORTURE_OP"
	tortureVariantEnv = "REPRO_TORTURE_VARIANT"
)

// tortureVariant returns child v's grid: overlapping slices of
// fastAxes whose union is the full 16-cell grid, with variant 0 the
// full grid itself — so every cell is contended by at least two
// writers.
func tortureVariant(v int) Axes {
	a := fastAxes()
	switch v % 4 {
	case 1:
		a.Concurrencies = a.Concurrencies[:1] // half the grid
	case 2:
		a.RTTs = a.RTTs[1:] // a different, overlapping half
	case 3:
		a.Buffers = a.Buffers[:1] // overlaps both halves above
	}
	return a
}

// TestTortureChildProcess is the re-exec entry point, inert unless the
// torture environment variables select an operation.
func TestTortureChildProcess(t *testing.T) {
	dir := os.Getenv(tortureDirEnv)
	if dir == "" {
		t.Skip("torture child entry point; spawned by the torture tests")
	}
	switch op := os.Getenv(tortureOpEnv); op {
	case "grid":
		v, err := strconv.Atoi(os.Getenv(tortureVariantEnv))
		if err != nil {
			t.Fatalf("bad %s: %v", tortureVariantEnv, err)
		}
		c := NewGridCache()
		c.SetDiskDir(dir)
		if _, err := c.Get(tortureVariant(v), 0); err != nil {
			t.Fatal(err)
		}
	case "compact":
		if _, err := CompactDiskCache(dir); err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatalf("unknown %s %q", tortureOpEnv, op)
	}
}

// tortureChild builds the re-exec command for one child process.
func tortureChild(dir, op string, extraEnv ...string) *exec.Cmd {
	cmd := exec.Command(os.Args[0], "-test.run=^TestTortureChildProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		tortureDirEnv+"="+dir,
		tortureOpEnv+"="+op,
		"FSFAULT=", // children inherit a clean fault state unless overridden
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	return cmd
}

// exitCode extracts a child's exit status (0 when err is nil).
func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		return ee.ExitCode()
	}
	return -1
}

// TestMultiProcessTortureWriters: four real processes cold-run
// overlapping grids into one cache directory concurrently. Afterwards
// every cell must be readable, the union grid byte-identical to a
// serial run, and compaction must reclaim every byte the contention
// duplicated — the multi-writer contract the directory lock exists to
// provide.
func TestMultiProcessTortureWriters(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec torture test skipped in -short mode")
	}
	dir := t.TempDir()

	// Serial reference: the same union grid, clean cache, this process.
	ref := coldRun(t, t.TempDir(), fastAxes())

	const writers = 4
	type result struct {
		v    int
		code int
		out  string
	}
	results := make(chan result, writers)
	for v := 0; v < writers; v++ {
		go func(v int) {
			cmd := tortureChild(dir, "grid", fmt.Sprintf("%s=%d", tortureVariantEnv, v))
			out, err := cmd.CombinedOutput()
			results <- result{v: v, code: exitCode(err), out: string(out)}
		}(v)
	}
	for i := 0; i < writers; i++ {
		r := <-results
		if r.code != 0 {
			t.Fatalf("torture writer %d exited %d:\n%s", r.v, r.code, r.out)
		}
	}

	rows, d := warmRunStats(t, dir, fastAxes())
	if d.EngineRuns != 0 {
		t.Errorf("union grid after torture executed %d experiments, want 0", d.EngineRuns)
	}
	if gridRowsJSON(t, rows) != gridRowsJSON(t, ref) {
		t.Error("torture-built cache rows differ from the serial reference")
	}

	// Contended duplicate appends are dead space; one compaction must
	// reclaim ALL of it (the second finds nothing).
	first, err := CompactDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if first.Records != len(fastAxes().Cells()) {
		t.Errorf("compacted store holds %d records, want %d", first.Records, len(fastAxes().Cells()))
	}
	second, err := CompactDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if second.ReclaimedBytes != 0 {
		t.Errorf("second compaction reclaimed %d bytes, want 0 (first left dead space)", second.ReclaimedBytes)
	}
	rows, d = warmRunStats(t, dir, fastAxes())
	if d.EngineRuns != 0 || gridRowsJSON(t, rows) != gridRowsJSON(t, ref) {
		t.Error("store not fully warm and identical after post-torture compaction")
	}
}

// TestKillMidAppendRecovers: a child process killed at an exact byte
// offset mid-append (fsfault kill@N — the deterministic SIGKILL) loses
// at most the cells it had not durably appended. The next run
// recomputes exactly the missing cells, matches the serial reference
// byte for byte, and leaves the store fully warm.
func TestKillMidAppendRecovers(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec torture test skipped in -short mode")
	}
	dir := t.TempDir()
	ref := coldRun(t, t.TempDir(), fastAxes())

	cmd := tortureChild(dir, "grid",
		tortureVariantEnv+"=0",
		"FSFAULT=segstore.append.write=kill@2000")
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != fsfault.KillExitCode {
		t.Fatalf("killed child exited %d, want %d:\n%s", code, fsfault.KillExitCode, out)
	}

	ResetSegmentStores()
	recovered := segmentRecordCount(dir)
	total := len(fastAxes().Cells())
	if recovered >= total {
		t.Fatalf("child recorded all %d cells despite being killed mid-append", total)
	}

	rows, d := warmRunStats(t, dir, fastAxes())
	if d.EngineRuns != int64(total-recovered) {
		t.Errorf("recovery run executed %d experiments, want exactly the %d missing cells",
			d.EngineRuns, total-recovered)
	}
	if gridRowsJSON(t, rows) != gridRowsJSON(t, ref) {
		t.Error("recovered rows differ from the serial reference")
	}
	rows, d = warmRunStats(t, dir, fastAxes())
	if d.EngineRuns != 0 {
		t.Errorf("store not fully warm after recovery: %d engine runs", d.EngineRuns)
	}
	if gridRowsJSON(t, rows) != gridRowsJSON(t, ref) {
		t.Error("warm rows differ from the serial reference")
	}
}

// TestKillMidCompactionServes: a process killed between compaction's
// sidecar removal and segment swap leaves a sidecar-less old segment
// plus a temp file. Nothing is lost: a fresh process serves every cell
// by full scan, and the next successful compaction cleans the litter.
func TestKillMidCompactionServes(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec torture test skipped in -short mode")
	}
	dir := t.TempDir()
	ref := seedCellRecords(t, dir, fastAxes())

	cmd := tortureChild(dir, "compact", "FSFAULT=segstore.compact.rename=kill@0")
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != fsfault.KillExitCode {
		t.Fatalf("killed compactor exited %d, want %d:\n%s", code, fsfault.KillExitCode, out)
	}
	if _, err := os.Stat(idxPathOf(dir)); !os.IsNotExist(err) {
		t.Error("sidecar survived the mid-compaction kill; compact must remove it before the swap")
	}

	rows, d := warmRunStats(t, dir, fastAxes())
	if d.EngineRuns != 0 {
		t.Errorf("sidecar-less store executed %d experiments, want 0 (full scan)", d.EngineRuns)
	}
	if gridRowsJSON(t, rows) != gridRowsJSON(t, ref) {
		t.Error("rows differ after mid-compaction kill")
	}

	if _, err := CompactDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if n := ent.Name(); n != segmentFileName && n != segmentIndexName && n != lockFileName {
			t.Errorf("unexpected file %q after cleanup compaction", n)
		}
	}
	if !strings.Contains(gridRowsJSON(t, ref), "Concurrency") {
		t.Fatal("reference rows unexpectedly empty") // guards the byte-compares above
	}
}
