package tcpsim

import (
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// Engine is a reusable TCP simulation engine. It holds every buffer the
// round loop needs — per-flow state as structure-of-arrays, the active
// set, and the per-round scratch vectors — so that repeated Run calls on
// workloads of similar size perform zero allocations in steady state
// (enforced by TestEngineSteadyStateAllocs).
//
// The engine produces results bit-identical to the original pointer-based
// implementation (see reference_test.go): flows are processed in stable
// arrival order, the active set is compacted in place preserving order
// (a swap-compact would reorder the per-flow RNG severity draws and
// change results), and every floating-point expression keeps the original
// evaluation order.
//
// An Engine is not safe for concurrent use. The *Result returned by Run
// aliases engine-owned storage and is valid only until the next Run or
// SoloClientFCT call on the same engine; callers that retain results
// across runs must copy what they need first. The package-level Run
// constructs a fresh engine per call and therefore has no such aliasing.
type Engine struct {
	rng *sim.RNG

	// Per-flow state, indexed by slot (pending order: stable-sorted by
	// arrival). Structure-of-arrays keeps the round loop walking dense
	// float64 slices instead of chasing *flow pointers.
	id         []int
	arrival    []float64
	size       []float64 // original payload, bytes
	remaining  []float64 // bytes not yet acknowledged
	cwnd       []float64 // congestion window, bytes
	ssthresh   []float64 // slow-start threshold, bytes
	stalledTo  []float64 // RTO: no transmission before this time
	wmaxSeg    []float64 // CUBIC: window at last loss, segments
	epochStart []float64 // CUBIC: time of last loss (-1: no epoch yet)
	kCubic     []float64 // CUBIC: time to regain wmax, seconds
	retrans    []int64
	timeouts   []int
	endT       []float64
	done       []bool

	// Sort scratch: spec indices, stable-ordered by arrival.
	order    []int32
	orderTmp []int32

	// Active set (slots) and per-round scratch, reused every round.
	active  []int32
	offered []float64
	lost    []float64
	weights []float64

	// Result storage, reused across runs.
	finished    []FlowResult
	finishedTmp []FlowResult
	counters    stats.LinkCounters
	qx, qy      []float64 // QueueDepth backing, reused when RecordQueue
	res         Result

	soloSpecs []FlowSpec // scratch for SoloClientFCT
}

// NewEngine returns an engine ready for Run. Buffers grow on first use
// and are retained across runs.
func NewEngine() *Engine {
	return &Engine{rng: sim.NewRNG(0)}
}

// grow sizes every per-flow buffer for n flows, reusing capacity. New
// capacity doubles at minimum so sweeps whose cells ascend in size
// (Table 2's concurrency axis) stop reallocating once, not per cell.
func (e *Engine) grow(n int) {
	if cap(e.arrival) < n {
		c := 2 * cap(e.arrival)
		if c < n {
			c = n
		}
		e.id = make([]int, n, c)
		e.arrival = make([]float64, n, c)
		e.size = make([]float64, n, c)
		e.remaining = make([]float64, n, c)
		e.cwnd = make([]float64, n, c)
		e.ssthresh = make([]float64, n, c)
		e.stalledTo = make([]float64, n, c)
		e.wmaxSeg = make([]float64, n, c)
		e.epochStart = make([]float64, n, c)
		e.kCubic = make([]float64, n, c)
		e.retrans = make([]int64, n, c)
		e.timeouts = make([]int, n, c)
		e.endT = make([]float64, n, c)
		e.done = make([]bool, n, c)
		e.order = make([]int32, n, c)
		e.orderTmp = make([]int32, n, c)
		e.active = make([]int32, 0, c)
		e.offered = make([]float64, n, c)
		e.lost = make([]float64, n, c)
		e.weights = make([]float64, n, c)
		e.finished = make([]FlowResult, 0, c)
		e.finishedTmp = make([]FlowResult, n, c)
		return
	}
	e.id = e.id[:n]
	e.arrival = e.arrival[:n]
	e.size = e.size[:n]
	e.remaining = e.remaining[:n]
	e.cwnd = e.cwnd[:n]
	e.ssthresh = e.ssthresh[:n]
	e.stalledTo = e.stalledTo[:n]
	e.wmaxSeg = e.wmaxSeg[:n]
	e.epochStart = e.epochStart[:n]
	e.kCubic = e.kCubic[:n]
	e.retrans = e.retrans[:n]
	e.timeouts = e.timeouts[:n]
	e.endT = e.endT[:n]
	e.done = e.done[:n]
	e.order = e.order[:n]
	e.orderTmp = e.orderTmp[:n]
	e.offered = e.offered[:n]
	e.lost = e.lost[:n]
	e.weights = e.weights[:n]
}

// mergeSortStable sorts a in place via bottom-up merges through tmp
// (len(tmp) >= len(a)), allocation-free. Merges take from the left run
// on ties, so equal keys keep input order — the same stability contract
// as sort.SliceStable. The comparison context rides in ctx through a
// static function value: a capturing closure here would heap-allocate
// and break the engine's zero-alloc contract.
func mergeSortStable[T, C any](a, tmp []T, ctx C, less func(C, *T, *T) bool) {
	n := len(a)
	x, y := a, tmp[:n]
	for width := 1; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := mid + width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			i, j, k := lo, mid, lo
			for i < mid && j < hi {
				if less(ctx, &x[j], &x[i]) {
					y[k] = x[j]
					j++
				} else {
					y[k] = x[i]
					i++
				}
				k++
			}
			for i < mid {
				y[k] = x[i]
				i++
				k++
			}
			for j < hi {
				y[k] = x[j]
				j++
				k++
			}
		}
		x, y = y, x
	}
	if n > 0 && &x[0] != &a[0] {
		copy(a, x)
	}
}

func slotArrivalLess(specs []FlowSpec, x, y *int32) bool {
	return specs[*x].Arrival < specs[*y].Arrival
}

func finishedLess(_ struct{}, x, y *FlowResult) bool {
	if x.Arrival != y.Arrival {
		return x.Arrival < y.Arrival
	}
	return x.ID < y.ID
}

// sortSlotsByArrival stable-sorts order by specs arrival. Stability
// matches the original sort.SliceStable: equal arrivals keep spec order,
// which fixes both the RNG draw order and the finish order of
// simultaneous flows.
func sortSlotsByArrival(order, tmp []int32, specs []FlowSpec) {
	mergeSortStable(order, tmp, specs, slotArrivalLess)
}

// flowResult assembles the FlowResult for a finished slot.
func (e *Engine) flowResult(slot int32) FlowResult {
	return FlowResult{
		ID:          e.id[slot],
		Arrival:     e.arrival[slot],
		End:         e.endT[slot],
		Bytes:       e.size[slot],
		Retransmits: e.retrans[slot],
		Timeouts:    e.timeouts[slot],
	}
}

// activate moves flows whose arrival has passed from the pending queue
// (slots next..n-1, arrival-sorted) into the active set; zero-size flows
// complete instantly at arrival. Returns the new pending cursor.
func (e *Engine) activate(now float64, next, n int) int {
	for next < n && e.arrival[next] <= now {
		slot := int32(next)
		next++
		if e.remaining[slot] <= 0 {
			e.endT[slot] = e.arrival[slot]
			e.finished = append(e.finished, e.flowResult(slot))
			continue
		}
		e.active = append(e.active, slot)
	}
	return next
}

// CUBIC helpers on SoA state (same formulas as RFC 8312 shapes in the
// flow-struct engine).

func (e *Engine) cubicWindow(slot int32, tt, mss float64) float64 {
	d := tt - e.kCubic[slot]
	return (cubicC*d*d*d + e.wmaxSeg[slot]) * mss
}

func (e *Engine) cubicOnLoss(slot int32, now, mss float64) {
	e.wmaxSeg[slot] = e.cwnd[slot] / mss
	e.epochStart[slot] = now
	e.kCubic[slot] = math.Cbrt(e.wmaxSeg[slot] * (1 - cubicBeta) / cubicC)
}

// sortFinishedStable stable-sorts the finished slice by (Arrival, ID).
// Equal keys keep finish order — the tie-break sort.SliceStable applied.
func (e *Engine) sortFinishedStable() {
	n := len(e.finished)
	if cap(e.finishedTmp) < n {
		e.finishedTmp = make([]FlowResult, n)
	}
	mergeSortStable(e.finished, e.finishedTmp[:n], struct{}{}, finishedLess)
}

// Run simulates the flows over the shared bottleneck, reusing the
// engine's buffers. The returned Result is engine-owned: it is valid
// until the next Run/SoloClientFCT call on this engine.
func (e *Engine) Run(cfg Config, specs []FlowSpec) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, ErrNoFlows
	}
	for _, s := range specs {
		if s.Size < 0 || s.Arrival < 0 || math.IsNaN(s.Arrival) || math.IsInf(s.Arrival, 0) {
			return nil, fmt.Errorf("%w: id=%d arrival=%v size=%v", ErrBadFlowSpec, s.ID, s.Arrival, s.Size)
		}
	}

	e.rng.Reseed(cfg.Seed)
	capacity := cfg.Capacity.ByteRate().BytesPerSecond() // bytes/s
	crossPhase := 0.0
	if cfg.Cross.enabled() && cfg.Cross.PhaseJitter && cfg.Cross.Period > 0 {
		crossPhase = e.rng.Float64() * cfg.Cross.Period.Seconds()
	}
	mss := cfg.MSS.Bytes()
	buffer := cfg.bufferBytes()
	baseRTT := cfg.BaseRTT.Seconds()
	rto := cfg.RTO.Seconds()
	maxWin := cfg.BDP() + buffer // no point growing cwnd beyond pipe+queue
	initCwnd := float64(cfg.InitCwndSegments) * mss
	maxTime := cfg.maxTime()

	// Lay the flows out in stable arrival order (the pending queue).
	n := len(specs)
	e.grow(n)
	for i := range e.order {
		e.order[i] = int32(i)
	}
	sortSlotsByArrival(e.order, e.orderTmp, specs)
	for k, idx := range e.order {
		s := specs[idx]
		e.id[k] = s.ID
		e.arrival[k] = s.Arrival
		e.size[k] = s.Size.Bytes()
		e.remaining[k] = s.Size.Bytes()
		e.cwnd[k] = initCwnd
		e.ssthresh[k] = maxWin
		e.stalledTo[k] = 0
		e.wmaxSeg[k] = 0
		e.epochStart[k] = -1
		e.kCubic[k] = 0
		e.retrans[k] = 0
		e.timeouts[k] = 0
		e.endT[k] = 0
		e.done[k] = false
	}

	// Reset reused result storage, keeping capacity. QueueDepth buffers
	// attach only when recording, so a non-recording run leaves the
	// zero-value Series exactly like the reference engine.
	e.counters.Reset()
	e.res = Result{Counters: &e.counters}
	if cfg.RecordQueue {
		e.res.QueueDepth = stats.Series{X: e.qx[:0], Y: e.qy[:0]}
	}
	e.active = e.active[:0]
	e.finished = e.finished[:0]

	t := e.arrival[0]
	queue := 0.0       // backlog bytes in the bottleneck buffer
	servedBytes := 0.0 // cumulative for counters
	servedPkts := int64(0)
	if err := e.counters.Record(t, 0, 0); err != nil {
		return nil, err
	}
	nextPending := e.activate(t, 0, n)

	for len(e.active) > 0 || nextPending < n {
		if t > maxTime {
			return nil, fmt.Errorf("%w (t=%.1fs, %d flows still active)", ErrHorizon, t, len(e.active))
		}
		if len(e.active) == 0 {
			// Idle gap: the residual queue drains through the link
			// (count it served), then jump to the next arrival.
			if queue > 0 {
				servedBytes += queue
				servedPkts += int64(queue / mss)
				if err := e.counters.Record(t+queue/capacity, servedBytes, servedPkts); err != nil {
					return nil, err
				}
				queue = 0
			}
			t = e.arrival[nextPending]
			nextPending = e.activate(t, nextPending, n)
			continue
		}

		// Background cross-traffic shrinks the capacity available to the
		// foreground flows this round.
		roundCap := capacity * (1 - cfg.Cross.consumedAt(t, crossPhase))

		// Round duration: base RTT plus the queueing delay data currently
		// ahead of this round's packets experiences.
		d := baseRTT + queue/roundCap

		// Injections this round (offered/lost are per-active-index scratch;
		// stale entries from larger prior rounds are never read).
		na := len(e.active)
		offered := e.offered[:na]
		lost := e.lost[:na]
		weights := e.weights[:na]
		total := 0.0
		for i, slot := range e.active {
			lost[i] = 0
			if t < e.stalledTo[slot] {
				offered[i] = 0 // RTO stall: nothing sent this round
				continue
			}
			w := math.Min(e.cwnd[slot], e.remaining[slot])
			offered[i] = w
			total += w
		}

		// Link service and queue evolution.
		drain := roundCap * d
		backlog := queue + total
		served := math.Min(backlog, drain)
		newQueue := backlog - served
		dropped := 0.0
		if newQueue > buffer {
			dropped = newQueue - buffer
			newQueue = buffer
		}

		// Allocate drops across flows proportionally to injections, with
		// randomized severity so recoveries desynchronize (this is what
		// grows the measured long tail).
		if dropped > 0 && total > 0 {
			wsum := 0.0
			for i := range e.active {
				if offered[i] <= 0 {
					weights[i] = 0
					continue
				}
				w := 0.5 + e.rng.Float64() // severity multiplier in [0.5, 1.5)
				weights[i] = w * offered[i]
				wsum += weights[i]
			}
			for i := range e.active {
				if wsum <= 0 {
					break
				}
				loss := dropped * weights[i] / wsum
				if loss > offered[i] {
					loss = offered[i]
				}
				lost[i] = loss
			}
		}

		// Apply per-flow outcomes.
		for i, slot := range e.active {
			if offered[i] <= 0 {
				continue
			}
			accepted := offered[i] - lost[i]
			e.remaining[slot] -= accepted
			if lost[i] > 0 {
				e.retrans[slot] += int64(math.Ceil(lost[i] / mss))
				lossRatio := lost[i] / offered[i]
				if lossRatio > 0.95 {
					// Whole window lost: retransmission timeout.
					e.timeouts[slot]++
					if cfg.CC == Cubic {
						e.cubicOnLoss(slot, t+d+rto, mss)
					}
					e.ssthresh[slot] = math.Max(e.cwnd[slot]/2, 2*mss)
					e.cwnd[slot] = mss
					e.stalledTo[slot] = t + d + rto
				} else {
					// Fast recovery: multiplicative decrease.
					switch cfg.CC {
					case Cubic:
						e.cubicOnLoss(slot, t+d, mss)
						e.ssthresh[slot] = math.Max(e.cwnd[slot]*cubicBeta, 2*mss)
					default: // Reno
						e.ssthresh[slot] = math.Max(e.cwnd[slot]/2, 2*mss)
					}
					e.cwnd[slot] = e.ssthresh[slot]
				}
			} else {
				// Window growth.
				switch {
				case e.cwnd[slot] < e.ssthresh[slot]:
					e.cwnd[slot] = math.Min(e.cwnd[slot]*2, maxWin) // slow start
				case cfg.CC == Cubic:
					if e.epochStart[slot] < 0 {
						// Entering congestion avoidance without a prior
						// loss: anchor the epoch here.
						e.cubicOnLoss(slot, t, mss)
					}
					tt := t + d - e.epochStart[slot]
					target := e.cubicWindow(slot, tt, mss)
					// RFC 8312 TCP-friendly region: CUBIC never grows
					// slower than an AIMD flow with the same β —
					// W_est = β·W_max + 3(1−β)/(1+β)·(t/RTT) segments.
					// Without this floor CUBIC stalls in small-window
					// regimes (its concave region is seconds long).
					wEst := (e.wmaxSeg[slot]*cubicBeta +
						3*(1-cubicBeta)/(1+cubicBeta)*(tt/d)) * mss
					if wEst > target {
						target = wEst
					}
					if target < e.cwnd[slot] {
						target = e.cwnd[slot] // windows do not shrink without loss
					}
					if target > 1.5*e.cwnd[slot] {
						target = 1.5 * e.cwnd[slot] // RFC 8312 max-probing cap
					}
					e.cwnd[slot] = math.Min(target, maxWin)
				default: // Reno congestion avoidance
					e.cwnd[slot] = math.Min(e.cwnd[slot]+mss, maxWin)
				}
			}
			if e.remaining[slot] <= 0 {
				e.done[slot] = true
				// Finish within the round proportionally to how much of
				// the round the last bytes needed.
				frac := 1.0
				if accepted > 0 {
					need := e.remaining[slot] + accepted // remaining at round start
					frac = need / accepted
					if frac > 1 {
						frac = 1
					}
				}
				e.endT[slot] = t + d*frac
			}
		}

		// Counters.
		servedBytes += served
		servedPkts += int64(served / mss)
		e.res.DroppedBytes += dropped
		if cfg.RecordQueue {
			e.res.QueueDepth.AddPoint(t, newQueue)
		}

		// Advance time and compact the active set in place. Compaction is
		// order-preserving on purpose: the severity RNG draws follow
		// active order, so a swap-compact would change results.
		t += d
		if err := e.counters.Record(t, servedBytes, servedPkts); err != nil {
			return nil, err
		}
		keep := e.active[:0]
		for _, slot := range e.active {
			if e.done[slot] {
				e.finished = append(e.finished, e.flowResult(slot))
			} else {
				keep = append(keep, slot)
			}
		}
		e.active = keep
		queue = newQueue
		nextPending = e.activate(t, nextPending, n)
	}

	// Drain whatever is left in the buffer: the last flows' accepted
	// bytes may still be crossing the link.
	if queue > 0 {
		servedBytes += queue
		servedPkts += int64(queue / mss)
		t += queue / capacity
		if err := e.counters.Record(t, servedBytes, servedPkts); err != nil {
			return nil, err
		}
		queue = 0
	}

	e.sortFinishedStable()
	e.res.Flows = e.finished
	e.res.Duration = t
	if cfg.RecordQueue {
		// Recover grown capacity for the next recording run.
		e.qx, e.qy = e.res.QueueDepth.X, e.res.QueueDepth.Y
	}
	return &e.res, nil
}

// SoloClientFCT is the engine-reusing form of the package-level
// SoloClientFCT: one client moving size bytes over nFlows parallel flows
// on an otherwise idle link, returning the client completion time.
func (e *Engine) SoloClientFCT(cfg Config, size units.ByteSize, nFlows int) (time.Duration, error) {
	if nFlows <= 0 {
		return 0, fmt.Errorf("tcpsim: nFlows must be > 0, got %d", nFlows)
	}
	per := units.ByteSize(size.Bytes() / float64(nFlows))
	specs := e.soloSpecs[:0]
	for i := 0; i < nFlows; i++ {
		specs = append(specs, FlowSpec{ID: i, Arrival: 0, Size: per})
	}
	e.soloSpecs = specs
	res, err := e.Run(cfg, specs)
	if err != nil {
		return 0, err
	}
	end := 0.0
	for _, f := range res.Flows {
		if f.End > end {
			end = f.End
		}
	}
	return units.Seconds(end), nil
}
