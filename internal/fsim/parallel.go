package fsim

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// This file extends the file-system model with multi-writer staging and
// DTN integrity verification — the knobs real deployments turn when the
// single-writer small-file penalty of Fig. 4 bites.

// BackendBandwidth optionally caps the aggregate throughput of parallel
// writers/readers; zero means the backend scales linearly with clients
// (realistic only for small client counts, which is exactly how the
// model should be used).
type parallelOpts struct {
	clients int
	backend units.ByteRate
}

// WriteTimeParallel returns the time for `writers` concurrent clients to
// create and write n files of the given size: per-file metadata is
// divided across writers (each client owns a share of the files), and
// payload moves at min(writers × per-writer bandwidth, backend).
// backend = 0 means the backend is not the constraint.
func (fs FileSystem) WriteTimeParallel(n int, each units.ByteSize, writers int, backend units.ByteRate) (time.Duration, error) {
	if err := fs.Validate(); err != nil {
		return 0, err
	}
	if writers <= 0 {
		return 0, fmt.Errorf("%w: writers must be > 0, got %d", ErrBadConfig, writers)
	}
	if backend < 0 {
		return 0, fmt.Errorf("%w: negative backend bandwidth", ErrBadConfig)
	}
	if n <= 0 {
		return 0, fmt.Errorf("%w, got %d", ErrBadFileCount, n)
	}
	if each < 0 {
		return 0, fmt.Errorf("%w, got %v", ErrBadFileSize, each)
	}
	// Each writer handles ceil(n/writers) files' metadata serially.
	perWriter := (n + writers - 1) / writers
	meta := time.Duration(perWriter) * (fs.CreateLatency + fs.CloseLatency)
	rate := float64(fs.WriteBandwidth) * float64(writers)
	if backend > 0 && float64(backend) < rate {
		rate = float64(backend)
	}
	payload := units.Seconds(float64(n) * each.Bytes() / rate)
	return meta + payload, nil
}

// ReadTimeParallel is the read-side analogue of WriteTimeParallel.
func (fs FileSystem) ReadTimeParallel(n int, each units.ByteSize, readers int, backend units.ByteRate) (time.Duration, error) {
	if err := fs.Validate(); err != nil {
		return 0, err
	}
	if readers <= 0 {
		return 0, fmt.Errorf("%w: readers must be > 0, got %d", ErrBadConfig, readers)
	}
	if backend < 0 {
		return 0, fmt.Errorf("%w: negative backend bandwidth", ErrBadConfig)
	}
	if n <= 0 {
		return 0, fmt.Errorf("%w, got %d", ErrBadFileCount, n)
	}
	if each < 0 {
		return 0, fmt.Errorf("%w, got %v", ErrBadFileSize, each)
	}
	perReader := (n + readers - 1) / readers
	meta := time.Duration(perReader) * (fs.OpenLatency + fs.CloseLatency)
	rate := float64(fs.ReadBandwidth) * float64(readers)
	if backend > 0 && float64(backend) < rate {
		rate = float64(backend)
	}
	payload := units.Seconds(float64(n) * each.Bytes() / rate)
	return meta + payload, nil
}

// WithChecksum returns a copy of the DTN that verifies every file at the
// given rate (e.g. Globus end-to-end checksums). Verification reads the
// payload once more, so it adds size/rate per file on top of setup and
// wire time.
func (d DTN) WithChecksum(rate units.ByteRate) (DTN, error) {
	if rate <= 0 {
		return DTN{}, fmt.Errorf("%w: checksum rate must be > 0, got %v", ErrBadConfig, rate)
	}
	d.ChecksumRate = rate
	return d, nil
}

// checksumTime returns the per-file verification time (0 when disabled).
func (d DTN) checksumTime(size units.ByteSize) time.Duration {
	if d.ChecksumRate <= 0 {
		return 0
	}
	return units.Seconds(size.Bytes() / d.ChecksumRate.BytesPerSecond())
}
