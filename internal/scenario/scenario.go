// Package scenario loads facility workload portfolios from JSON and runs
// the decision framework over them in bulk — the operational interface a
// facility would actually script against (one file describing every
// beamline workflow, one command returning local/remote/infeasible per
// row).
package scenario

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/plot"
	"repro/internal/units"
)

// Workload is one JSON entry. All quantity fields take the human
// notation the units package parses ("2GB", "25Gbps", "34TF", "2GB/s").
type Workload struct {
	// Name labels the row in reports.
	Name string `json:"name"`
	// UnitSize is S_unit, e.g. "2GB".
	UnitSize string `json:"unit_size"`
	// ComplexityFLOPPerGB is C in FLOP per GB (the paper's unit).
	ComplexityFLOPPerGB float64 `json:"complexity_flop_per_gb"`
	// Local and Remote are processing rates, e.g. "5TF", "100TF".
	Local  string `json:"local"`
	Remote string `json:"remote"`
	// Bandwidth is the raw link, e.g. "25Gbps".
	Bandwidth string `json:"bandwidth"`
	// TransferRate is the effective rate, e.g. "2GB/s".
	TransferRate string `json:"transfer_rate"`
	// Theta is the file-I/O overhead (default 1 = streaming).
	Theta float64 `json:"theta"`
	// GenerationRate optionally enables the sustained-rate check.
	GenerationRate string `json:"generation_rate,omitempty"`
	// Tier optionally sets the deadline: 1, 2, or 3.
	Tier int `json:"tier,omitempty"`
}

// File is the top-level JSON document.
type File struct {
	Workloads []Workload `json:"workloads"`
}

// ErrNoWorkloads is returned for an empty portfolio.
var ErrNoWorkloads = errors.New("scenario: no workloads in file")

// Load parses a portfolio from r.
func Load(r io.Reader) (*File, error) {
	var f File
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenario: parsing JSON: %w", err)
	}
	if len(f.Workloads) == 0 {
		return nil, ErrNoWorkloads
	}
	return &f, nil
}

// Params converts one workload to model parameters.
func (w Workload) Params() (core.Params, error) {
	var p core.Params
	size, err := units.ParseByteSize(w.UnitSize)
	if err != nil {
		return p, fmt.Errorf("scenario: %s unit_size: %w", w.Name, err)
	}
	local, err := units.ParseFLOPS(w.Local)
	if err != nil {
		return p, fmt.Errorf("scenario: %s local: %w", w.Name, err)
	}
	remote, err := units.ParseFLOPS(w.Remote)
	if err != nil {
		return p, fmt.Errorf("scenario: %s remote: %w", w.Name, err)
	}
	bw, err := units.ParseBitRate(w.Bandwidth)
	if err != nil {
		return p, fmt.Errorf("scenario: %s bandwidth: %w", w.Name, err)
	}
	rate, err := units.ParseByteRate(w.TransferRate)
	if err != nil {
		return p, fmt.Errorf("scenario: %s transfer_rate: %w", w.Name, err)
	}
	theta := w.Theta
	if theta == 0 {
		theta = 1
	}
	p = core.Params{
		UnitSize:              size,
		ComplexityFLOPPerByte: core.ComplexityFLOPPerGB(w.ComplexityFLOPPerGB),
		LocalRate:             local,
		RemoteRate:            remote,
		Bandwidth:             bw,
		TransferRate:          rate,
		Theta:                 theta,
	}
	return p, p.Validate()
}

// opts converts the optional constraint fields.
func (w Workload) opts() (core.DecideOpts, error) {
	var o core.DecideOpts
	if w.GenerationRate != "" {
		gen, err := units.ParseByteRate(w.GenerationRate)
		if err != nil {
			return o, fmt.Errorf("scenario: %s generation_rate: %w", w.Name, err)
		}
		o.GenerationRate = gen
	}
	if w.Tier != 0 {
		t := core.Tier(w.Tier)
		if t.Budget() == 0 {
			return o, fmt.Errorf("scenario: %s: unknown tier %d", w.Name, w.Tier)
		}
		o.Deadline = t.Budget()
	}
	return o, nil
}

// Row is one decided workload.
type Row struct {
	Workload Workload
	Params   core.Params
	Decision core.Decision
}

// DecideAll runs the decision framework over the whole portfolio.
func DecideAll(f *File) ([]Row, error) {
	if f == nil || len(f.Workloads) == 0 {
		return nil, ErrNoWorkloads
	}
	rows := make([]Row, 0, len(f.Workloads))
	for _, w := range f.Workloads {
		p, err := w.Params()
		if err != nil {
			return nil, err
		}
		o, err := w.opts()
		if err != nil {
			return nil, err
		}
		d, err := core.Decide(p, o)
		if err != nil {
			return nil, fmt.Errorf("scenario: %s: %w", w.Name, err)
		}
		rows = append(rows, Row{Workload: w, Params: p, Decision: d})
	}
	return rows, nil
}

// Render formats decided rows as an aligned table.
func Render(rows []Row) string {
	t := &plot.Table{Header: []string{"Workload", "T_local", "T_pct", "Gain", "Decision", "Why"}}
	for _, r := range rows {
		t.AddRow(
			r.Workload.Name,
			r.Decision.Breakdown.TLocal.Round(time.Millisecond).String(),
			r.Decision.Breakdown.TPct.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2f", r.Decision.Gain),
			r.Decision.Choice.String(),
			r.Decision.Reason,
		)
	}
	return t.String()
}
