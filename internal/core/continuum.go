package core

import (
	"time"

	"repro/internal/units"
)

// DelayComponents is the Kurose–Ross per-packet delay decomposition the
// paper quotes as Eq. 1:
//
//	d_total = d_proc + d_queue + d_trans + d_prop
//
// It is included as the *baseline* the paper critiques: prior work
// simplifies d_total ≈ d_prop by assuming infinite capacity and empty
// queues, which is exactly the optimal-case bias that breaks
// time-sensitive streaming decisions.
type DelayComponents struct {
	Processing   time.Duration // d_proc: per-hop header processing
	Queueing     time.Duration // d_queue: time waiting in router buffers
	Transmission time.Duration // d_trans: L/R serialization delay
	Propagation  time.Duration // d_prop: physical path latency
}

// Total returns d_total (Eq. 1).
func (d DelayComponents) Total() time.Duration {
	return d.Processing + d.Queueing + d.Transmission + d.Propagation
}

// ContinuumApprox returns the continuum-paper simplification (Eq. 2):
// d_continuum ≈ d_prop.
func (d DelayComponents) ContinuumApprox() time.Duration {
	return d.Propagation
}

// UnderestimationFactor returns how many times larger the true total
// delay is than the continuum approximation, Total/Prop. A factor of 1
// means the approximation is exact; congestion pushes it far above 1.
func (d DelayComponents) UnderestimationFactor() float64 {
	prop := d.Propagation.Seconds()
	tot := d.Total().Seconds()
	if prop <= 0 {
		if tot <= 0 {
			return 1
		}
		return float64(d.Total()) // effectively infinite; scaled sentinel
	}
	return tot / prop
}

// TransmissionDelay returns d_trans = L/R for a packet of the given size
// on a link of the given rate.
func TransmissionDelay(packet units.ByteSize, link units.BitRate) time.Duration {
	if link <= 0 {
		return 0
	}
	return units.Seconds(packet.Bits() / link.BitsPerSecond())
}

// ContinuumTransferEstimate is the whole-transfer analogue of Eq. 2: the
// flow completion time a continuum-style analysis would predict for a
// transfer — one propagation delay plus pure serialization at full link
// rate, no queueing, no losses, no protocol dynamics.
func ContinuumTransferEstimate(size units.ByteSize, link units.BitRate, propagation time.Duration) time.Duration {
	return propagation + TransmissionDelay(size, link)
}

// ContinuumError compares a continuum estimate against a measured (or
// simulated) worst-case completion time, returning measured/estimate.
// This is the quantity behind DESIGN.md ablation #4: how badly the
// baseline underestimates congested transfers.
func ContinuumError(measuredWorst time.Duration, size units.ByteSize, link units.BitRate, propagation time.Duration) float64 {
	est := ContinuumTransferEstimate(size, link, propagation).Seconds()
	if est <= 0 {
		return 0
	}
	return measuredWorst.Seconds() / est
}
