package experiments

import (
	"strings"
	"testing"
)

func TestLoadHeatmap(t *testing.T) {
	res := quickFig2a(t)
	a, err := LoadHeatmap(res.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-heatmap" {
		t.Errorf("id = %s", a.ID)
	}
	for _, want := range []string{"P=2", "P=8", "c=1", "c=8", "scale:"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("heat map missing %q:\n%s", want, a.Text)
		}
	}
	if !strings.Contains(a.CSV, "P\\concurrency") {
		t.Errorf("csv header missing:\n%s", a.CSV)
	}
	if _, err := LoadHeatmap(nil); err == nil {
		t.Error("nil sweep accepted")
	}
}

func TestVariabilityReport(t *testing.T) {
	res := quickFig2a(t)
	a, err := VariabilityReport(res.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-variability" {
		t.Errorf("id = %s", a.ID)
	}
	for _, want := range []string{"P(remote wins)", "P(meets Tier 2)", "median-case decision", "worst-case decision"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("report missing %q:\n%s", want, a.Text)
		}
	}
	// The selected cell must be the highest stable load (96% in the
	// quick sweep's axes).
	if !strings.Contains(a.Text, "offered=96%") {
		t.Errorf("wrong cell selected:\n%s", a.Text)
	}
	if _, err := VariabilityReport(nil); err == nil {
		t.Error("nil sweep accepted")
	}
}

func TestGainMap(t *testing.T) {
	a, err := GainMap()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-gainmap" {
		t.Errorf("id = %s", a.ID)
	}
	for _, want := range []string{"r=20", "a=0.1", "scale:", "G>1"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("gain map missing %q:\n%s", want, a.Text)
		}
	}
	if !strings.Contains(a.CSV, "r\\alpha") {
		t.Errorf("csv header:\n%s", a.CSV)
	}
}

func TestGainGridFrontier(t *testing.T) {
	// The grid must contain both losing (G<1) and winning (G>1) corners
	// for the case-study workload: slow link + slow remote loses, fast
	// link + fast remote wins.
	a, err := GainMap()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.CSV, "0.3") { // some sub-1 gain present
		t.Logf("csv:\n%s", a.CSV)
	}
}

func TestHopFrontier(t *testing.T) {
	a, err := HopFrontier()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-hopfrontier" {
		t.Errorf("id = %s", a.ID)
	}
	for _, want := range []string{"edge->WAN", "ECap", "WANRTT", "Placement", "Bottleneck"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("report missing %q:\n%s", want, a.Text)
		}
	}
	// The 2 Gbps edge uplink cannot sustain the 2 GB/s generation rate,
	// so at least one cell must leave stream-direct, and the sweep spans
	// the 2→25 Gbps uplink upgrade, so the verdict must not be uniform.
	if !strings.Contains(a.Text, "placement frontier (") {
		t.Errorf("expected a placement frontier across the uplink sweep:\n%s", a.Text)
	}
	if !strings.Contains(a.CSV, "edge_cap,wan_rtt,placement,bottleneck,gain") {
		t.Errorf("csv header:\n%s", a.CSV)
	}
}

func TestPipelineReport(t *testing.T) {
	a, err := PipelineReport()
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "ext-pipeline" {
		t.Errorf("id = %s", a.ID)
	}
	for _, want := range []string{"cycle 1s", "DECISION: remote", "steady-state result lag"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("report missing %q:\n%s", want, a.Text)
		}
	}
	// The §5 workload: only the remote pipeline sustains the 1 Hz
	// cadence (T_local = 6.8 s per unit).
	if !strings.Contains(a.Text, "remote keeps 1 Hz cadence: true; local keeps cadence: false") {
		t.Errorf("cadence analysis wrong:\n%s", a.Text)
	}
}
