// Package units provides strongly typed physical quantities used across
// the stream2x reproduction: data sizes, bit and byte rates, and compute
// rates (FLOPS).
//
// The paper "To Stream or Not to Stream" works exclusively in decimal
// units (0.5 GB at 25 Gbps = 0.16 s), so this package uses SI decimal
// multipliers: 1 GB = 1e9 bytes, 1 Gbps = 1e9 bits per second. Binary
// (IEC) multipliers are provided with their explicit names (GiB, ...)
// for callers that need them, but nothing in the reproduction uses them
// by default.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// ByteSize is an amount of data in bytes. It is a float64 so that
// analytic model arithmetic (fractions of a unit) stays exact enough
// without forced truncation; display rounds as appropriate.
type ByteSize float64

// Decimal (SI) data size multipliers.
const (
	Byte ByteSize = 1
	KB            = 1e3 * Byte
	MB            = 1e6 * Byte
	GB            = 1e9 * Byte
	TB            = 1e12 * Byte
	PB            = 1e15 * Byte
)

// Binary (IEC) data size multipliers.
const (
	KiB = 1024 * Byte
	MiB = 1024 * KiB
	GiB = 1024 * MiB
	TiB = 1024 * GiB
)

// Bytes returns the size as a plain float64 byte count.
func (s ByteSize) Bytes() float64 { return float64(s) }

// Bits returns the size in bits.
func (s ByteSize) Bits() float64 { return float64(s) * 8 }

// IsZero reports whether the size is exactly zero.
func (s ByteSize) IsZero() bool { return s == 0 }

// String formats the size with an automatically chosen decimal suffix,
// e.g. "0.50 GB", "12.08 GB", "512 B".
func (s ByteSize) String() string {
	v := float64(s)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(PB):
		return fmt.Sprintf("%s%.2f PB", neg, v/float64(PB))
	case v >= float64(TB):
		return fmt.Sprintf("%s%.2f TB", neg, v/float64(TB))
	case v >= float64(GB):
		return fmt.Sprintf("%s%.2f GB", neg, v/float64(GB))
	case v >= float64(MB):
		return fmt.Sprintf("%s%.2f MB", neg, v/float64(MB))
	case v >= float64(KB):
		return fmt.Sprintf("%s%.2f KB", neg, v/float64(KB))
	default:
		return fmt.Sprintf("%s%g B", neg, v)
	}
}

// BitRate is a data rate in bits per second, the unit network links are
// specified in (e.g. a 25 Gbps Mellanox ConnectX-5).
type BitRate float64

// Decimal bit rate multipliers.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e6 * BitPerSecond
	Gbps                 = 1e9 * BitPerSecond
	Tbps                 = 1e12 * BitPerSecond
)

// BitsPerSecond returns the rate as a plain float64.
func (r BitRate) BitsPerSecond() float64 { return float64(r) }

// ByteRate converts the bit rate to the equivalent byte rate.
func (r BitRate) ByteRate() ByteRate { return ByteRate(float64(r) / 8) }

// String formats the rate with an automatically chosen suffix.
func (r BitRate) String() string {
	v := float64(r)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(Tbps):
		return fmt.Sprintf("%s%.2f Tbps", neg, v/float64(Tbps))
	case v >= float64(Gbps):
		return fmt.Sprintf("%s%.2f Gbps", neg, v/float64(Gbps))
	case v >= float64(Mbps):
		return fmt.Sprintf("%s%.2f Mbps", neg, v/float64(Mbps))
	case v >= float64(Kbps):
		return fmt.Sprintf("%s%.2f Kbps", neg, v/float64(Kbps))
	default:
		return fmt.Sprintf("%s%g bps", neg, v)
	}
}

// ByteRate is a data rate in bytes per second, the unit the paper's
// model works in (R_transfer, data generation rates in GB/s).
type ByteRate float64

// Decimal byte rate multipliers.
const (
	BytePerSecond ByteRate = 1
	KBps                   = 1e3 * BytePerSecond
	MBps                   = 1e6 * BytePerSecond
	GBps                   = 1e9 * BytePerSecond
	TBps                   = 1e12 * BytePerSecond
)

// BytesPerSecond returns the rate as a plain float64.
func (r ByteRate) BytesPerSecond() float64 { return float64(r) }

// BitRate converts the byte rate to the equivalent bit rate.
func (r ByteRate) BitRate() BitRate { return BitRate(float64(r) * 8) }

// String formats the rate with an automatically chosen suffix.
func (r ByteRate) String() string {
	v := float64(r)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(TBps):
		return fmt.Sprintf("%s%.2f TB/s", neg, v/float64(TBps))
	case v >= float64(GBps):
		return fmt.Sprintf("%s%.2f GB/s", neg, v/float64(GBps))
	case v >= float64(MBps):
		return fmt.Sprintf("%s%.2f MB/s", neg, v/float64(MBps))
	case v >= float64(KBps):
		return fmt.Sprintf("%s%.2f KB/s", neg, v/float64(KBps))
	default:
		return fmt.Sprintf("%s%g B/s", neg, v)
	}
}

// TimeToMove returns how long moving size at this rate takes.
// It returns +Inf duration semantics via a very large duration when the
// rate is zero or negative; callers that need to distinguish should
// check the rate first.
func (r ByteRate) TimeToMove(size ByteSize) time.Duration {
	if r <= 0 {
		return time.Duration(math.MaxInt64)
	}
	sec := float64(size) / float64(r)
	return Seconds(sec)
}

// FLOPS is a compute rate in floating-point operations per second.
type FLOPS float64

// FLOPS multipliers.
const (
	FLOPPerSecond FLOPS = 1
	MegaFLOPS           = 1e6 * FLOPPerSecond
	GigaFLOPS           = 1e9 * FLOPPerSecond
	TeraFLOPS           = 1e12 * FLOPPerSecond
	PetaFLOPS           = 1e15 * FLOPPerSecond
	ExaFLOPS            = 1e18 * FLOPPerSecond
)

// PerSecond returns the rate as a plain float64 FLOP/s.
func (f FLOPS) PerSecond() float64 { return float64(f) }

// String formats the compute rate with an automatically chosen suffix.
func (f FLOPS) String() string {
	v := float64(f)
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v >= float64(ExaFLOPS):
		return fmt.Sprintf("%s%.2f EFLOPS", neg, v/float64(ExaFLOPS))
	case v >= float64(PetaFLOPS):
		return fmt.Sprintf("%s%.2f PFLOPS", neg, v/float64(PetaFLOPS))
	case v >= float64(TeraFLOPS):
		return fmt.Sprintf("%s%.2f TFLOPS", neg, v/float64(TeraFLOPS))
	case v >= float64(GigaFLOPS):
		return fmt.Sprintf("%s%.2f GFLOPS", neg, v/float64(GigaFLOPS))
	case v >= float64(MegaFLOPS):
		return fmt.Sprintf("%s%.2f MFLOPS", neg, v/float64(MegaFLOPS))
	default:
		return fmt.Sprintf("%s%g FLOP/s", neg, v)
	}
}

// Seconds converts float64 seconds to a time.Duration, rounding to the
// nearest nanosecond and saturating at the representable range instead
// of overflowing. Rounding (not truncating) keeps
// Seconds(d.Seconds()) == d for every Duration.
func Seconds(sec float64) time.Duration {
	if math.IsNaN(sec) {
		return 0
	}
	ns := math.Round(sec * 1e9)
	if ns >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if ns <= math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

// Sec converts a time.Duration to float64 seconds.
func Sec(d time.Duration) float64 { return d.Seconds() }

// parseNumberSuffix splits "12.5GB" into 12.5 and "GB" (suffix trimmed
// and case preserved). Accepts an optional single space between number
// and suffix.
func parseNumberSuffix(s string) (float64, string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, "", fmt.Errorf("units: empty quantity")
	}
	i := 0
	for i < len(s) {
		c := s[i]
		if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == 'e' || c == 'E' {
			// Keep consuming digits; be careful that 'E' may begin a
			// suffix like "EB". Only treat e/E as part of the number
			// when followed by a digit or sign.
			if c == 'e' || c == 'E' {
				if i+1 >= len(s) {
					break
				}
				n := s[i+1]
				if !(n >= '0' && n <= '9') && n != '+' && n != '-' {
					break
				}
			}
			i++
			continue
		}
		break
	}
	numPart := strings.TrimSpace(s[:i])
	sufPart := strings.TrimSpace(s[i:])
	if numPart == "" {
		return 0, "", fmt.Errorf("units: no numeric part in %q", s)
	}
	v, err := strconv.ParseFloat(numPart, 64)
	if err != nil {
		return 0, "", fmt.Errorf("units: bad number in %q: %w", s, err)
	}
	return v, sufPart, nil
}

// ParseByteSize parses strings like "0.5GB", "12.6 GB", "8MiB", "512B",
// "2048" (bare numbers are bytes).
func ParseByteSize(s string) (ByteSize, error) {
	v, suf, err := parseNumberSuffix(s)
	if err != nil {
		return 0, err
	}
	mult, ok := byteSuffixes[strings.ToUpper(suf)]
	if !ok {
		return 0, fmt.Errorf("units: unknown size suffix %q in %q", suf, s)
	}
	return ByteSize(v) * mult, nil
}

var byteSuffixes = map[string]ByteSize{
	"":    Byte,
	"B":   Byte,
	"KB":  KB,
	"MB":  MB,
	"GB":  GB,
	"TB":  TB,
	"PB":  PB,
	"KIB": KiB,
	"MIB": MiB,
	"GIB": GiB,
	"TIB": TiB,
}

// ParseBitRate parses strings like "25Gbps", "40 Gbps", "100Mbps",
// "1Tbps". Bare numbers are bits per second.
func ParseBitRate(s string) (BitRate, error) {
	v, suf, err := parseNumberSuffix(s)
	if err != nil {
		return 0, err
	}
	mult, ok := bitRateSuffixes[strings.ToUpper(suf)]
	if !ok {
		return 0, fmt.Errorf("units: unknown bit-rate suffix %q in %q", suf, s)
	}
	return BitRate(v) * mult, nil
}

var bitRateSuffixes = map[string]BitRate{
	"":     BitPerSecond,
	"BPS":  BitPerSecond,
	"KBPS": Kbps,
	"MBPS": Mbps,
	"GBPS": Gbps,
	"TBPS": Tbps,
	// Spelled forms.
	"BIT/S":  BitPerSecond,
	"KBIT/S": Kbps,
	"MBIT/S": Mbps,
	"GBIT/S": Gbps,
	"TBIT/S": Tbps,
}

// ParseByteRate parses strings like "2GB/s", "240 MB/s", "3GBps".
// Bare numbers are bytes per second.
func ParseByteRate(s string) (ByteRate, error) {
	v, suf, err := parseNumberSuffix(s)
	if err != nil {
		return 0, err
	}
	mult, ok := byteRateSuffixes[strings.ToUpper(suf)]
	if !ok {
		return 0, fmt.Errorf("units: unknown byte-rate suffix %q in %q", suf, s)
	}
	return ByteRate(v) * mult, nil
}

var byteRateSuffixes = map[string]ByteRate{
	"":     BytePerSecond,
	"B/S":  BytePerSecond,
	"KB/S": KBps,
	"MB/S": MBps,
	"GB/S": GBps,
	"TB/S": TBps,
}

// ParseFLOPS parses strings like "34TF", "20 TFLOPS", "1.5PF".
func ParseFLOPS(s string) (FLOPS, error) {
	v, suf, err := parseNumberSuffix(s)
	if err != nil {
		return 0, err
	}
	mult, ok := flopsSuffixes[strings.ToUpper(suf)]
	if !ok {
		return 0, fmt.Errorf("units: unknown FLOPS suffix %q in %q", suf, s)
	}
	return FLOPS(v) * mult, nil
}

var flopsSuffixes = map[string]FLOPS{
	"":       FLOPPerSecond,
	"F":      FLOPPerSecond,
	"FLOPS":  FLOPPerSecond,
	"MF":     MegaFLOPS,
	"MFLOPS": MegaFLOPS,
	"GF":     GigaFLOPS,
	"GFLOPS": GigaFLOPS,
	"TF":     TeraFLOPS,
	"TFLOPS": TeraFLOPS,
	"PF":     PetaFLOPS,
	"PFLOPS": PetaFLOPS,
	"EF":     ExaFLOPS,
	"EFLOPS": ExaFLOPS,
}
