package plot

import (
	"math"
	"strings"
	"testing"
)

func TestHeatMapBasic(t *testing.T) {
	out, err := HeatMap("worst FCT",
		[]string{"P=2", "P=8"},
		[]string{"c=1", "c=8"},
		[][]float64{{0.2, 5.0}, {0.3, 6.6}})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"worst FCT", "P=2", "c=8", "scale:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Hottest cell gets the darkest glyph, coolest the lightest-but-one
	// (space is reserved for the minimum itself).
	if !strings.Contains(out, "@") {
		t.Errorf("max glyph missing:\n%s", out)
	}
}

func TestHeatMapValidation(t *testing.T) {
	if _, err := HeatMap("t", []string{"a"}, []string{"x"}, nil); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := HeatMap("t", []string{"a", "b"}, []string{"x"}, [][]float64{{1}}); err == nil {
		t.Error("label/row mismatch accepted")
	}
	if _, err := HeatMap("t", []string{"a"}, []string{"x", "y"}, [][]float64{{1}}); err == nil {
		t.Error("ragged row accepted")
	}
}

func TestHeatMapDegenerate(t *testing.T) {
	// All-equal and NaN cells must not panic or divide by zero.
	out, err := HeatMap("flat", []string{"r"}, []string{"c1", "c2"},
		[][]float64{{2, 2}})
	if err != nil || out == "" {
		t.Fatalf("flat map: %v", err)
	}
	out, err = HeatMap("nan", []string{"r"}, []string{"c1", "c2"},
		[][]float64{{math.NaN(), 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "?") {
		t.Errorf("NaN cell not rendered as '?':\n%s", out)
	}
	out, err = HeatMap("allnan", []string{"r"}, []string{"c"},
		[][]float64{{math.NaN()}})
	if err != nil || out == "" {
		t.Fatalf("all-NaN map: %v", err)
	}
}
