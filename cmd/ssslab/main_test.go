package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/workload"
)

// TestMain points CACHE_DIR at a throwaway directory so a test that
// omits -cache-dir can never read or write the developer's real sweep
// cache.
func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "ssslab-cache")
	if err != nil {
		panic(err)
	}
	os.Setenv("CACHE_DIR", dir)
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func TestSimMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seconds", "2", "-concurrency", "6", "-flows", "8", "-cache-dir", "off"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"offered load:  96%", "worst FCT:", "SSS:", "regime:"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

func TestSimScheduled(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-seconds", "2", "-strategy", "scheduled", "-cache-dir", "off"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "scheduled") {
		t.Errorf("strategy missing:\n%s", out.String())
	}
}

func TestSimCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.csv")
	var out strings.Builder
	if err := run([]string{"-seconds", "1", "-csv", path, "-cache-dir", "off"}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "client_id") {
		t.Errorf("csv content: %s", data)
	}
}

// TestSimRepeatedInvocationWarm: the same single-experiment invocation
// served from the disk cache runs zero simulations and prints the same
// report.
func TestSimRepeatedInvocationWarm(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-seconds", "2", "-concurrency", "6", "-cache-dir", dir}

	// Other tests may have memoized these axes with persistence off; a
	// real CLI invocation always starts cold.
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	var cold strings.Builder
	if err := run(args, &cold); err != nil {
		t.Fatal(err)
	}
	// Empty the in-memory caches so the second run can only be served
	// from disk — as a fresh process invocation would be.
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	before := workload.EngineRunCount()
	var warm strings.Builder
	if err := run(args, &warm); err != nil {
		t.Fatal(err)
	}
	if runs := workload.EngineRunCount() - before; runs != 0 {
		t.Errorf("warm invocation ran %d experiments, want 0", runs)
	}
	if warm.String() != cold.String() {
		t.Errorf("warm output differs:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

// gridArgs sweeps three axes (RTT × buffer × parallel flows) — the
// acceptance shape for -grid.
func gridArgs(cacheDir string) []string {
	return []string{"-grid", "-seconds", "1", "-concurrency", "6",
		"-rtts", "8ms,32ms", "-buffers", "auto,1MB", "-pflows", "2,8",
		"-cache-dir", cacheDir}
}

func TestGridMode(t *testing.T) {
	var out strings.Builder
	if err := run(gridArgs("off"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"grid: 8 cells",
		"2 RTTs x 2 buffers",
		"SSS", "Regime",
		"stream-vs-store",
		"break-even",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
	// 8 cells → 8 table rows.
	if rows := strings.Count(s, "500.00 MB |"); rows != 8 {
		t.Errorf("table has %d rows, want 8:\n%s", rows, s)
	}
}

// TestGridWarmDiskCache is the PR's acceptance criterion: a second
// invocation of the same -grid command is served entirely from the disk
// cache — zero engine runs — and reports identical results.
func TestGridWarmDiskCache(t *testing.T) {
	dir := t.TempDir()

	// Start cold, as a real CLI invocation would.
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	var cold strings.Builder
	if err := run(gridArgs(dir), &cold); err != nil {
		t.Fatal(err)
	}
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	before := workload.EngineRunCount()
	var warm strings.Builder
	if err := run(gridArgs(dir), &warm); err != nil {
		t.Fatal(err)
	}
	if runs := workload.EngineRunCount() - before; runs != 0 {
		t.Errorf("warm grid invocation ran %d experiments, want 0", runs)
	}
	if warm.String() != cold.String() {
		t.Errorf("warm output differs:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

// TestCacheStats: -cache-stats reports how the grid was served — every
// cell from the engine when cold, every cell from disk when warm, and
// zero engine runs for a sub-grid contained in an earlier superset run.
func TestCacheStats(t *testing.T) {
	dir := t.TempDir()
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	var cold strings.Builder
	if err := run(append(gridArgs(dir), "-cache-stats"), &cold); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cold.String(), "cache-stats: cells=8 memo=0 disk=0 segment=0 engine-runs=8") {
		t.Errorf("cold stats line missing:\n%s", cold.String())
	}

	// A strict sub-grid of the superset (1 of 2 RTTs × 1 of 2 buffers ×
	// both P values = 2 of the 8 cells), in a fresh "process": every cell
	// must come from the superset's records, zero engine runs.
	workload.PurgeSweepCache()
	workload.PurgeGridCache()
	subArgs := []string{"-grid", "-seconds", "1", "-concurrency", "6",
		"-rtts", "32ms", "-buffers", "1MB", "-pflows", "2,8",
		"-cache-dir", dir, "-cache-stats"}
	before := workload.EngineRunCount()
	var warm strings.Builder
	if err := run(subArgs, &warm); err != nil {
		t.Fatal(err)
	}
	if runs := workload.EngineRunCount() - before; runs != 0 {
		t.Errorf("sub-grid ran %d experiments, want 0", runs)
	}
	if !strings.Contains(warm.String(), "cache-stats: cells=2 memo=0 disk=0 segment=2 engine-runs=0") {
		t.Errorf("warm sub-grid stats line missing:\n%s", warm.String())
	}
}

// TestCacheStatsLiveModeUsageError: -cache-stats outside sim mode must
// error with a usage message, not silently ignore the flag.
func TestCacheStatsLiveModeUsageError(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "live", "-cache-stats"}, &out)
	if err == nil || !strings.Contains(err.Error(), "usage:") {
		t.Errorf("live -cache-stats error = %v, want usage message", err)
	}
}

// TestCompactCache: -compact-cache rewrites a seeded directory into a
// segment file + sidecar and a subsequent warm grid run is served
// entirely from the compacted segment.
func TestCompactCache(t *testing.T) {
	dir := t.TempDir()
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	var cold strings.Builder
	if err := run(gridArgs(dir), &cold); err != nil {
		t.Fatal(err)
	}

	var summary strings.Builder
	if err := run([]string{"-compact-cache", "-cache-dir", dir}, &summary); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary.String(), "compacted") || !strings.Contains(summary.String(), "8 records") {
		t.Errorf("compaction summary: %q", summary.String())
	}
	for _, name := range []string{"cells.seg", "cells.idx"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing after compaction: %v", name, err)
		}
	}

	workload.PurgeSweepCache()
	workload.PurgeGridCache()
	workload.ResetSegmentStores()
	var warm strings.Builder
	if err := run(append(gridArgs(dir), "-cache-stats"), &warm); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "cache-stats: cells=8 memo=0 disk=0 segment=8 engine-runs=0") {
		t.Errorf("post-compaction warm stats missing:\n%s", warm.String())
	}
}

// TestCompactCacheFlagConflicts: -compact-cache is standalone.
func TestCompactCacheFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-compact-cache", "-grid"},
		{"-compact-cache", "-portfolio", "x.json"},
		{"-compact-cache", "-mode", "live"},
		{"-compact-cache", "-cache-stats"},
		{"-compact-cache", "-csv", "out.csv"},
		{"-compact-cache", "-concs", "1,4"},
		{"-compact-cache", "-hops", "edge:10Gbps:2ms,wan:100Gbps:30ms"},
		{"-compact-cache", "-edge-caps", "10Gbps,60Gbps"},
		{"-compact-cache", "-wan-rtts", "20ms,60ms"},
		{"-compact-cache", "-ingress-buffers", "auto,4MB"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil || !strings.Contains(err.Error(), "usage:") {
			t.Errorf("run(%v) error = %v, want standalone-mode usage error", args, err)
		}
	}
	// And with persistence off there is nothing to compact.
	var out strings.Builder
	if err := run([]string{"-compact-cache", "-cache-dir", "off"}, &out); err == nil {
		t.Error("compact with -cache-dir off succeeded, want error")
	}
}

func TestGridCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.csv")
	var out strings.Builder
	args := append(gridArgs("off"), "-csv", path)
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"rtt", "sss"} {
		if !strings.Contains(strings.ToLower(string(data)), want) {
			t.Errorf("grid csv missing %q:\n%s", want, data)
		}
	}
}

// examplePortfolio is the runnable portfolio shipped with the repo.
const examplePortfolio = "../../examples/portfolio/portfolio.json"

// portfolioArgs sweeps RTT × concurrency and summarizes the example
// portfolio over the grid.
func portfolioArgs(cacheDir string) []string {
	return []string{"-grid", "-seconds", "1", "-portfolio", examplePortfolio,
		"-rtts", "8ms,64ms", "-concs", "2,6", "-cache-dir", cacheDir}
}

func TestPortfolioSummaryMode(t *testing.T) {
	var out strings.Builder
	if err := run(portfolioArgs("off"), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"portfolio: portfolio (4 scenarios)",
		"Scenario", "Remote", "Local", "Infeasible",
		"XPCS", "TomoBank", "CryoML", "HLT",
		"mean stream fraction:",
		"per-scenario break-even frontiers:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q:\n%s", want, s)
		}
	}
}

// TestPortfolioWarmDiskCache: warm portfolio summaries are pure
// post-processing of the cached grid — zero engine runs, identical text.
func TestPortfolioWarmDiskCache(t *testing.T) {
	dir := t.TempDir()

	workload.PurgeSweepCache()
	workload.PurgeGridCache()
	var cold strings.Builder
	if err := run(portfolioArgs(dir), &cold); err != nil {
		t.Fatal(err)
	}
	workload.PurgeSweepCache()
	workload.PurgeGridCache()

	before := workload.EngineRunCount()
	var warm strings.Builder
	if err := run(portfolioArgs(dir), &warm); err != nil {
		t.Fatal(err)
	}
	if runs := workload.EngineRunCount() - before; runs != 0 {
		t.Errorf("warm portfolio invocation ran %d experiments, want 0", runs)
	}
	if warm.String() != cold.String() {
		t.Errorf("warm output differs:\ncold:\n%s\nwarm:\n%s", cold.String(), warm.String())
	}
}

func TestPortfolioCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "portfolio.csv")
	var out strings.Builder
	if err := run(append(portfolioArgs("off"), "-csv", path), &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "decision", "XPCS"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("portfolio csv missing %q:\n%s", want, data)
		}
	}
}

func TestLiveMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-mode", "live", "-seconds", "1", "-concurrency", "2",
		"-flows", "2", "-size", "256KB"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "live loopback") {
		t.Errorf("live output:\n%s", out.String())
	}
}

func TestBadArgs(t *testing.T) {
	cases := [][]string{
		{"-mode", "quantum"},
		{"-strategy", "chaotic"},
		{"-mode", "live", "-strategy", "chaotic"},
		{"-size", "banana"},
		{"-mode", "live", "-size", "banana"},
		{"-seconds", "0", "-cache-dir", "off"},
		{"-mode", "live", "-grid", "-rtts", "8ms,64ms"},
		{"-grid", "-rtts", "soon", "-cache-dir", "off"},
		{"-grid", "-ccs", "bbr", "-cache-dir", "off"},
		{"-grid", "-buffers", "big", "-cache-dir", "off"},
		{"-grid", "-local", "banana", "-cache-dir", "off"},
		{"-portfolio", examplePortfolio, "-cache-dir", "off"},
		{"-mode", "live", "-portfolio", examplePortfolio},
		{"-mode", "live", "-cache-stats"},
		{"-grid", "-portfolio", "missing.json", "-cache-dir", "off"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
