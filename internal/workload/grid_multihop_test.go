package workload

// Multi-hop grid semantics: hop-axis enumeration, bottleneck
// composition, validation, fingerprint disjointness, determinism, and
// cache behavior — including cross-topology record sharing with the
// equivalent flat grid (composed coordinates, not topology, key the
// records).

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tcpsim"
	"repro/internal/units"
)

// threeHopPath: edge 10 Gbps / 2ms, WAN 100 Gbps / 30ms at 30% cross,
// ingress 40 Gbps / 1ms with a 4 MB queue. The edge's 10 Gbps residual
// is the bottleneck.
func threeHopPath() tcpsim.Path {
	return tcpsim.Path{
		{Role: tcpsim.HopEdge, Capacity: 10e9, RTT: 2 * time.Millisecond, Buffer: 1 * units.MB},
		{Role: tcpsim.HopWAN, Capacity: 100e9, RTT: 30 * time.Millisecond, Buffer: 8 * units.MB, CrossFraction: 0.3},
		{Role: tcpsim.HopIngress, Capacity: 40e9, RTT: 1 * time.Millisecond, Buffer: 4 * units.MB},
	}
}

// multiHopAxes is the unit-test hop grid: 2 edge capacities × 2 WAN
// RTTs × 2 P × 2 conc = 16 one-second cells.
func multiHopAxes() Axes {
	return Axes{
		Duration:      1 * time.Second,
		Concurrencies: []int{2, 6},
		ParallelFlows: []int{2, 8},
		TransferSizes: []units.ByteSize{0.5 * units.GB},
		Strategy:      SpawnSimultaneous,
		Net:           tcpsim.DefaultConfig(),
		Path:          threeHopPath(),
		EdgeCaps:      []units.BitRate{10e9, 60e9},
		WANRTTs:       []time.Duration{20 * time.Millisecond, 60 * time.Millisecond},
	}
}

func TestMultiHopSizeAndCells(t *testing.T) {
	a := multiHopAxes()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := a.NetPoints(); got != 4 {
		t.Fatalf("NetPoints = %d, want 4", got)
	}
	if got := a.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	cells := a.Cells()
	if len(cells) != 16 {
		t.Fatalf("len(Cells) = %d, want 16", len(cells))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d carries Index %d", i, c.Index)
		}
		// Composed RTT: edge 2ms + swept WAN RTT + ingress 1ms.
		if want := 3*time.Millisecond + c.WANRTT; c.RTT != want {
			t.Fatalf("cell %d: composed RTT %v, want %v", i, c.RTT, want)
		}
		switch c.EdgeCap {
		case 10e9:
			// Edge residual 10 Gbps < WAN residual 70 Gbps < ingress 40:
			// the edge is the bottleneck.
			if c.Capacity != 10e9 || c.Buffer != 1*units.MB || c.CrossFraction != 0 {
				t.Fatalf("cell %d: bottleneck should be the 10G edge: %+v", i, c)
			}
		case 60e9:
			// Edge residual 60 > ingress 40: the ingress takes over.
			if c.Capacity != 40e9 || c.Buffer != 4*units.MB || c.CrossFraction != 0 {
				t.Fatalf("cell %d: bottleneck should be the 40G ingress: %+v", i, c)
			}
		default:
			t.Fatalf("cell %d: unexpected EdgeCap %v", i, c.EdgeCap)
		}
	}
	// NetIndex groups the Table 2 plane under each hop point.
	if cells[0].NetIndex != cells[3].NetIndex || cells[3].NetIndex == cells[4].NetIndex {
		t.Fatalf("NetIndex grouping wrong: %d %d %d", cells[0].NetIndex, cells[3].NetIndex, cells[4].NetIndex)
	}
}

func TestMultiHopValidate(t *testing.T) {
	cases := map[string]func(a Axes) Axes{
		"hop axes without a path": func(a Axes) Axes {
			a.Path = nil
			return a
		},
		"hop axes with a 1-hop path": func(a Axes) Axes {
			a.Path = a.Path[:1]
			a.WANRTTs = nil
			return a
		},
		"flat RTT axis on a multi-hop grid": func(a Axes) Axes {
			a.RTTs = []time.Duration{8 * time.Millisecond, 16 * time.Millisecond}
			return a
		},
		"flat buffer axis on a multi-hop grid": func(a Axes) Axes {
			a.Buffers = []units.ByteSize{0, 2 * units.MB}
			return a
		},
		"flat cross axis on a multi-hop grid": func(a Axes) Axes {
			a.CrossFractions = []float64{0, 0.3}
			return a
		},
		"hop axis for an absent hop": func(a Axes) Axes {
			a.Path = a.Path[1:] // wan+ingress only
			a.EdgeCaps = []units.BitRate{10e9}
			return a
		},
		"non-positive edge capacity": func(a Axes) Axes {
			a.EdgeCaps = []units.BitRate{0}
			return a
		},
		"non-positive wan rtt": func(a Axes) Axes {
			a.WANRTTs = []time.Duration{0}
			return a
		},
		"structurally invalid path": func(a Axes) Axes {
			a.Path = tcpsim.Path{a.Path[1], a.Path[0], a.Path[2]}
			return a
		},
	}
	for name, mutate := range cases {
		if err := mutate(multiHopAxes()).Validate(); err == nil {
			t.Errorf("%s: Validate accepted the axes", name)
		}
	}
	// The CC axis is an endpoint property and stays sweepable.
	ok := multiHopAxes()
	ok.CCs = []tcpsim.CongestionControl{tcpsim.Reno, tcpsim.Cubic}
	if err := ok.Validate(); err != nil {
		t.Fatalf("CC axis on a multi-hop grid rejected: %v", err)
	}
	if ok.Size() != 32 {
		t.Fatalf("Size with CC axis = %d, want 32", ok.Size())
	}
	// Validate must be stable under normalization (the planner and the
	// caches re-validate normalized axes).
	if err := multiHopAxes().normalized().Validate(); err != nil {
		t.Fatalf("normalized multi-hop axes failed Validate: %v", err)
	}
}

// TestMultiHopFingerprint: hop terms render, distinguish paths, and
// never appear on flat or 1-hop grids.
func TestMultiHopFingerprint(t *testing.T) {
	a := multiHopAxes()
	fp := a.Fingerprint()
	for _, term := range []string{";hops=edge:", "|wan:", "|ingress:", ";ecaps=", ";wrtts=", ";ibufs="} {
		if !strings.Contains(fp, term) {
			t.Fatalf("multi-hop fingerprint missing %q: %s", term, fp)
		}
	}
	b := a
	b.Path = append(tcpsim.Path(nil), a.Path...)
	b.Path[1].CrossFraction = 0.5
	if b.Fingerprint() == fp {
		t.Fatal("fingerprint does not distinguish hop cross-traffic")
	}
	if flat := fastAxes().Fingerprint(); strings.Contains(flat, "hops=") {
		t.Fatalf("flat fingerprint grew a hops term: %s", flat)
	}
	one := fastAxes()
	one.Path = tcpsim.Path{{Role: tcpsim.HopWAN, Capacity: one.Net.Capacity, RTT: one.Net.BaseRTT,
		Buffer: one.Net.Buffer, CrossFraction: one.Net.Cross.Fraction}}
	if strings.Contains(one.Fingerprint(), "hops=") {
		t.Fatal("1-hop fingerprint grew a hops term (fold failed)")
	}
}

// TestMultiHopDeterminismAndWarmCache: worker-count independence, and
// a warm re-open of a multi-hop grid serves every cell from the
// segment with zero engine runs, byte-identical.
func TestMultiHopDeterminismAndWarmCache(t *testing.T) {
	a := multiHopAxes()
	serial, err := RunGrid(a)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunGridParallel(a, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gridRowsJSON(t, par.Rows) != gridRowsJSON(t, serial.Rows) {
		t.Fatal("multi-hop grid not worker-count independent")
	}

	dir := t.TempDir()
	cold := NewGridCache()
	cold.SetDiskDir(dir)
	g, err := cold.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if gridRowsJSON(t, g.Rows) != gridRowsJSON(t, serial.Rows) {
		t.Fatal("cached multi-hop rows differ from cold serial RunGrid")
	}

	ResetSegmentStores()
	warm := NewGridCache()
	warm.SetDiskDir(dir)
	base := ReadCacheStats()
	g2, err := warm.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := ReadCacheStats().Since(base)
	if d.EngineRuns != 0 || d.CellsFromSegment != int64(a.Size()) {
		t.Fatalf("multi-hop warm open stats = %v, want all %d cells from segment", d, a.Size())
	}
	if gridRowsJSON(t, g2.Rows) != gridRowsJSON(t, g.Rows) {
		t.Fatal("multi-hop warm rows not byte-identical")
	}
}

// TestMultiHopSharesCellsWithFlat: a multi-hop cell is keyed by its
// COMPOSED coordinates, so a flat grid over the same base Net that
// sweeps through the same composed points must warm-serve the
// multi-hop grid's cells — topology is a description, the operating
// point is the cache identity. (As with any cross-grid sharing, the
// base Net must match: per-cell seed offsets are intrinsic to a
// point's coordinates *relative to the base Net*. The multi-hop grid's
// base Net is the composition of the path's own hop values, so the
// flat twin uses exactly that and sweeps the composed RTT.)
func TestMultiHopSharesCellsWithFlat(t *testing.T) {
	a := multiHopAxes()
	a.EdgeCaps = a.EdgeCaps[:1]                        // 10G edge: the bottleneck
	a.WANRTTs = []time.Duration{20 * time.Millisecond} // composed RTT 23ms

	flat := Axes{
		Duration:      a.Duration,
		Concurrencies: a.Concurrencies,
		ParallelFlows: a.ParallelFlows,
		TransferSizes: a.TransferSizes,
		Strategy:      a.Strategy,
		Net:           a.Path.Effective(a.Net), // the multi-hop grid's own base Net
		RTTs:          []time.Duration{23 * time.Millisecond},
	}
	if flat.Net.Capacity != 10e9 || flat.Net.BaseRTT != 33*time.Millisecond ||
		flat.Net.Buffer != 1*units.MB || flat.Net.Cross.Fraction != 0 {
		t.Fatalf("unexpected composed base Net: %+v", flat.Net)
	}

	dir := t.TempDir()
	cold := NewGridCache()
	cold.SetDiskDir(dir)
	ref, err := cold.Get(flat, 0)
	if err != nil {
		t.Fatal(err)
	}

	ResetSegmentStores()
	warm := NewGridCache()
	warm.SetDiskDir(dir)
	base := ReadCacheStats()
	g, err := warm.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := ReadCacheStats().Since(base)
	if d.EngineRuns != 0 || d.CellsFromSegment != int64(a.Size()) {
		t.Fatalf("multi-hop grid stats = %v, want all %d cells served from the flat grid's records", d, a.Size())
	}
	// The measurements are bit-identical; the Cell coordinates legitimately
	// differ (one grid describes the point through hops, the other flat).
	if len(g.Rows) != len(ref.Rows) {
		t.Fatalf("row count %d != %d", len(g.Rows), len(ref.Rows))
	}
	for i := range g.Rows {
		if !rowsBitEqual(g.Rows[i].SweepRow, ref.Rows[i].SweepRow) {
			t.Fatalf("row %d measurements differ from the flat grid at the same composed operating point", i)
		}
	}
}
