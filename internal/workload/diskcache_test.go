package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// rowsJSON encodes sweep rows for byte-identity comparison.
func rowsJSON(t *testing.T, rows []SweepRow) string {
	t.Helper()
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDiskCacheWarmSweep is the disk-persistence contract: a second
// cache (a fresh process, in effect) pointed at the same directory
// serves the sweep entirely from disk — zero engine runs — and the
// loaded rows are byte-identical to the computed ones.
func TestDiskCacheWarmSweep(t *testing.T) {
	dir := t.TempDir()
	cfg := fastSweep()

	cold := NewSweepCache()
	cold.SetDiskDir(dir)
	first, err := cold.Get(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(diskPath(dir, cfg.Fingerprint())); err != nil {
		t.Fatalf("cache file not written: %v", err)
	}

	warm := NewSweepCache()
	warm.SetDiskDir(dir)
	before := EngineRunCount()
	second, err := warm.Get(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runs := EngineRunCount() - before; runs != 0 {
		t.Fatalf("warm disk path ran %d experiments, want 0", runs)
	}
	if rowsJSON(t, second.Rows) != rowsJSON(t, first.Rows) {
		t.Fatal("disk-loaded rows not byte-identical to computed rows")
	}
	if second.Config.Fingerprint() != cfg.Fingerprint() {
		t.Fatal("loaded result lost its config")
	}
}

// TestDiskCacheWarmGrid is the same contract for multi-axis grids.
func TestDiskCacheWarmGrid(t *testing.T) {
	dir := t.TempDir()
	a := fastAxes()

	cold := NewGridCache()
	cold.SetDiskDir(dir)
	first, err := cold.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}

	warm := NewGridCache()
	warm.SetDiskDir(dir)
	before := EngineRunCount()
	second, err := warm.Get(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runs := EngineRunCount() - before; runs != 0 {
		t.Fatalf("warm disk path ran %d experiments, want 0", runs)
	}
	firstJSON, _ := json.Marshal(first.Rows)
	secondJSON, _ := json.Marshal(second.Rows)
	if string(firstJSON) != string(secondJSON) {
		t.Fatal("disk-loaded grid rows not byte-identical to computed rows")
	}
}

// corruptionCases mangles a valid cache file in every way the loader
// must tolerate.
var corruptionCases = map[string]func(t *testing.T, path string){
	"garbage": func(t *testing.T, path string) {
		if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"truncated": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"empty": func(t *testing.T, path string) {
		if err := os.WriteFile(path, nil, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"version mismatch": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env diskEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env.Version = "repro-sweeps/v0-ancient"
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"fingerprint mismatch": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env diskEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env.Fingerprint = "grid;someone-elses-config"
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	},
	"payload wrong shape": func(t *testing.T, path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env diskEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		env.Payload = json.RawMessage(`[1, 2, 3]`)
		out, err := json.Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	},
}

// TestDiskCacheCorruptionFallsBack: every class of defective cache file
// is treated as a miss — the sweep recomputes, produces correct rows,
// and rewrites a good file.
func TestDiskCacheCorruptionFallsBack(t *testing.T) {
	cfg := fastSweep()
	want, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON := rowsJSON(t, want.Rows)

	for name, corrupt := range corruptionCases {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			seeder := NewSweepCache()
			seeder.SetDiskDir(dir)
			if _, err := seeder.Get(cfg, 0); err != nil {
				t.Fatal(err)
			}
			path := diskPath(dir, cfg.Fingerprint())
			corrupt(t, path)

			c := NewSweepCache()
			c.SetDiskDir(dir)
			before := EngineRunCount()
			res, err := c.Get(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			if EngineRunCount() == before {
				t.Error("defective cache file served without recompute")
			}
			if rowsJSON(t, res.Rows) != wantJSON {
				t.Error("recomputed rows differ from reference")
			}
			// The recompute must leave a good file behind.
			var reloaded SweepResult
			if !diskLoad(dir, cfg.Fingerprint(), &reloaded) {
				t.Error("cache file not repaired after recompute")
			} else if rowsJSON(t, reloaded.Rows) != wantJSON {
				t.Error("repaired cache file holds wrong rows")
			}
		})
	}
}

// TestDiskCacheSingleFlight: concurrent readers of one fingerprint on a
// cold cache trigger exactly one sweep computation.
func TestDiskCacheSingleFlight(t *testing.T) {
	dir := t.TempDir()
	cfg := fastSweep()
	c := NewSweepCache()
	c.SetDiskDir(dir)

	before := EngineRunCount()
	const readers = 8
	results := make([]*SweepResult, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Get(cfg, 2)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if runs := EngineRunCount() - before; runs != int64(cfg.Size()) {
		t.Errorf("%d readers ran %d experiments, want exactly one sweep (%d)", readers, runs, cfg.Size())
	}
	for i := 1; i < readers; i++ {
		if results[i] != results[0] {
			t.Fatal("readers did not share the single-flight result")
		}
	}
}

// TestDiskCacheKeepClientResultsNotPersisted: sweeps that pin full
// client results stay memory-only.
func TestDiskCacheKeepClientResultsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	cfg := fastSweep()
	cfg.KeepClientResults = true
	c := NewSweepCache()
	c.SetDiskDir(dir)
	if _, err := c.Get(cfg, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(diskPath(dir, cfg.Fingerprint())); !os.IsNotExist(err) {
		t.Errorf("KeepClientResults sweep persisted to disk (stat err = %v)", err)
	}
}

func TestPurgeDiskCache(t *testing.T) {
	dir := t.TempDir()
	c := NewSweepCache()
	c.SetDiskDir(dir)
	if _, err := c.Get(fastSweep(), 0); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(keep, []byte("not a cache file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := PurgeDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".json" {
			t.Errorf("cache file %s survived purge", e.Name())
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Errorf("purge removed unrelated file: %v", err)
	}
	// A missing directory is not an error.
	if err := PurgeDiskCache(filepath.Join(dir, "missing")); err != nil {
		t.Errorf("purge of missing dir: %v", err)
	}
}

func TestResolveCacheDir(t *testing.T) {
	for _, off := range []string{"off", "none"} {
		dir, err := ResolveCacheDir(off)
		if err != nil || dir != "" {
			t.Errorf("ResolveCacheDir(%q) = %q, %v; want disabled", off, dir, err)
		}
	}
	if dir, err := ResolveCacheDir("/tmp/explicit"); err != nil || dir != "/tmp/explicit" {
		t.Errorf("explicit dir = %q, %v", dir, err)
	}
	t.Setenv(cacheDirEnv, "/tmp/from-env")
	if dir, err := ResolveCacheDir(""); err != nil || dir != "/tmp/from-env" {
		t.Errorf("env dir = %q, %v", dir, err)
	}

	// No resolvable location at all (minimal container: no CACHE_DIR, no
	// HOME) degrades to persistence off, never an error — CLIs must keep
	// working without a cache.
	t.Setenv(cacheDirEnv, "")
	t.Setenv("HOME", "")
	t.Setenv("XDG_CACHE_HOME", "")
	if dir, err := ResolveCacheDir(""); err != nil || dir != "" {
		t.Errorf("unresolvable default = %q, %v; want persistence off", dir, err)
	}
}

// TestSetDiskCacheDirProcessWide wires the default caches to a temp dir
// and back, asserting RunSweepCached persists and re-serves from disk.
func TestSetDiskCacheDirProcessWide(t *testing.T) {
	dir := t.TempDir()
	SetDiskCacheDir(dir)
	defer SetDiskCacheDir("")
	defer PurgeSweepCache()
	defer PurgeGridCache()

	cfg := fastSweep()
	cfg.Duration = 1 * 1e9 // 1 s, distinct from other tests' entries
	first, err := RunSweepCached(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	PurgeSweepCache()
	before := EngineRunCount()
	second, err := RunSweepCached(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if runs := EngineRunCount() - before; runs != 0 {
		t.Fatalf("warm process-wide path ran %d experiments, want 0", runs)
	}
	if rowsJSON(t, first.Rows) != rowsJSON(t, second.Rows) {
		t.Fatal("process-wide disk round-trip changed rows")
	}
}
