// Package queueing provides analytic M/M/1 and M/D/1 delay estimates —
// the paper's "future work: incorporate concurrency and queuing effects"
// — used both as a fast feasibility screen and as a cross-check on the
// simulators (DESIGN.md ablation #3).
//
// Transfers map to queueing jobs as follows: a link serving transfers of
// size S at capacity C is a server with service rate mu = C/S jobs per
// second; clients spawning at a given concurrency (clients per second)
// form the arrival process with rate lambda. The sojourn time (wait +
// service) is the flow completion time analogue.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// ErrUnstable is returned when the offered load ρ = λ/μ is >= 1 — the
// queue grows without bound and no steady-state estimate exists. This is
// the analytic analogue of the paper's "severe congestion" regime.
var ErrUnstable = errors.New("queueing: utilization >= 1, queue is unstable")

// MM1 models an M/M/1 queue: Poisson arrivals, exponential service.
type MM1 struct {
	Lambda float64 // arrival rate, jobs/s
	Mu     float64 // service rate, jobs/s
}

// MD1 models an M/D/1 queue: Poisson arrivals, deterministic service —
// the better fit for fixed-size instrument frames.
type MD1 struct {
	Lambda float64 // arrival rate, jobs/s
	Mu     float64 // service rate, jobs/s
}

// validate checks rates and stability.
func validate(lambda, mu float64) (rho float64, err error) {
	if lambda < 0 || math.IsNaN(lambda) {
		return 0, fmt.Errorf("queueing: bad arrival rate %v", lambda)
	}
	if mu <= 0 || math.IsNaN(mu) {
		return 0, fmt.Errorf("queueing: bad service rate %v", mu)
	}
	rho = lambda / mu
	if rho >= 1 {
		return rho, fmt.Errorf("%w (rho=%.3f)", ErrUnstable, rho)
	}
	return rho, nil
}

// Rho returns the utilization λ/μ.
func (q MM1) Rho() float64 { return q.Lambda / q.Mu }

// MeanSojourn returns the mean time a job spends in the system
// (wait + service): W = 1/(μ−λ).
func (q MM1) MeanSojourn() (time.Duration, error) {
	if _, err := validate(q.Lambda, q.Mu); err != nil {
		return 0, err
	}
	return units.Seconds(1 / (q.Mu - q.Lambda)), nil
}

// MeanWait returns the mean queueing delay Wq = ρ/(μ−λ).
func (q MM1) MeanWait() (time.Duration, error) {
	rho, err := validate(q.Lambda, q.Mu)
	if err != nil {
		return 0, err
	}
	return units.Seconds(rho / (q.Mu - q.Lambda)), nil
}

// QuantileSojourn returns the p-quantile of the sojourn time. For M/M/1
// the sojourn is exponential with rate μ−λ: Q(p) = −ln(1−p)/(μ−λ).
// This gives the analytic P99 the paper's tail-latency argument needs.
func (q MM1) QuantileSojourn(p float64) (time.Duration, error) {
	if p < 0 || p >= 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("queueing: quantile %v out of [0,1)", p)
	}
	if _, err := validate(q.Lambda, q.Mu); err != nil {
		return 0, err
	}
	return units.Seconds(-math.Log(1-p) / (q.Mu - q.Lambda)), nil
}

// MeanQueueLength returns the mean number of jobs in the system,
// L = ρ/(1−ρ) (Little's law consistent with MeanSojourn).
func (q MM1) MeanQueueLength() (float64, error) {
	rho, err := validate(q.Lambda, q.Mu)
	if err != nil {
		return 0, err
	}
	return rho / (1 - rho), nil
}

// Rho returns the utilization λ/μ.
func (q MD1) Rho() float64 { return q.Lambda / q.Mu }

// MeanWait returns the Pollaczek–Khinchine mean queueing delay for
// deterministic service: Wq = ρ / (2μ(1−ρ)).
func (q MD1) MeanWait() (time.Duration, error) {
	rho, err := validate(q.Lambda, q.Mu)
	if err != nil {
		return 0, err
	}
	return units.Seconds(rho / (2 * q.Mu * (1 - rho))), nil
}

// MeanSojourn returns mean wait plus the deterministic service time 1/μ.
func (q MD1) MeanSojourn() (time.Duration, error) {
	w, err := q.MeanWait()
	if err != nil {
		return 0, err
	}
	return w + units.Seconds(1/q.Mu), nil
}

// TransferQueue builds the queueing view of a transfer workload: clients
// spawning at `concurrency` per second, each moving `size` over a link of
// `capacity`, served one at a time (the scheduled/reserved regime).
func TransferQueue(concurrency float64, size units.ByteSize, capacity units.BitRate) (MD1, error) {
	if size <= 0 {
		return MD1{}, fmt.Errorf("queueing: size must be > 0, got %v", size)
	}
	if capacity <= 0 {
		return MD1{}, fmt.Errorf("queueing: capacity must be > 0, got %v", capacity)
	}
	mu := capacity.ByteRate().BytesPerSecond() / size.Bytes()
	return MD1{Lambda: concurrency, Mu: mu}, nil
}
