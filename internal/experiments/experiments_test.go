package experiments

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestTable1Static(t *testing.T) {
	a := Table1()
	for _, want := range []string{"AMD EPYC", "25 Gbps", "9000 bytes", "Component"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("table1 missing %q", want)
		}
	}
	if a.CSV == "" || a.ID != "table1" {
		t.Error("table1 metadata incomplete")
	}
}

func TestTable2ReflectsConfig(t *testing.T) {
	a := Table2(PaperSweep())
	for _, want := range []string{"10s", "1-8", "[2 4 8]", "500.00 MB", "24", "25.00 Gbps", "16ms"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("table2 missing %q in:\n%s", want, a.Text)
		}
	}
}

func TestTable3Static(t *testing.T) {
	a := Table3()
	for _, want := range []string{"Coherent Scattering", "2 GB/s", "34 TF", "Liquid Scattering", "4 GB/s", "20 TF"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("table3 missing %q", want)
		}
	}
}

// sharedQuickFig2a runs the quick Fig. 2a sweep once for all tests.
var sharedFig2a *Fig2Result

func quickFig2a(t *testing.T) *Fig2Result {
	t.Helper()
	if sharedFig2a != nil {
		return sharedFig2a
	}
	res, err := Fig2a(QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	sharedFig2a = res
	return res
}

func TestFig2aShape(t *testing.T) {
	res := quickFig2a(t)
	if res.Artifact.ID != "fig2a" || !strings.Contains(res.Artifact.Text, "legend") {
		t.Errorf("artifact malformed: %s", res.Artifact.ID)
	}
	if !strings.Contains(res.Artifact.CSV, "utilization") {
		t.Error("csv missing header")
	}
	// The defining shape: worst-case at the highest load must dwarf the
	// worst-case at the lowest.
	rows := res.Sweep.Rows
	var lowWorst, highWorst time.Duration
	for _, r := range rows {
		if r.Concurrency == 1 && r.ParallelFlows == 8 {
			lowWorst = r.Worst
		}
		if r.Concurrency == 8 && r.ParallelFlows == 8 {
			highWorst = r.Worst
		}
	}
	if highWorst < 4*lowWorst {
		t.Errorf("no congestion blow-up: low %v high %v", lowWorst, highWorst)
	}
}

func TestFig2bFlat(t *testing.T) {
	res, err := Fig2b(QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	// Scheduled: every row's worst stays within 2x of the minimum row —
	// "steady transfer" across load.
	var min, max time.Duration
	for i, r := range res.Sweep.Rows {
		if i == 0 || r.Worst < min {
			min = r.Worst
		}
		if r.Worst > max {
			max = r.Worst
		}
	}
	if max > 2*min {
		t.Errorf("scheduled sweep not flat: min %v max %v", min, max)
	}
	if max.Seconds() > 0.5 {
		t.Errorf("scheduled worst %v, want sub-500ms", max)
	}
}

func TestFig3LongTail(t *testing.T) {
	res := quickFig2a(t)
	a, err := Fig3(res.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "tail index") || !strings.Contains(a.Text, "P(X<=x)") {
		t.Errorf("fig3 text incomplete:\n%s", a.Text)
	}
	sample := pooledSample(res.Sweep)
	tail, err := sample.TailIndex()
	if err != nil {
		t.Fatal(err)
	}
	// The pooled population must be long-tailed (paper: non-linear
	// P90/P99 increases).
	if tail < 2 {
		t.Errorf("tail index = %v, want >= 2", tail)
	}
}

func TestRegimeTableCoversAllThree(t *testing.T) {
	res := quickFig2a(t)
	curve, err := res.Sweep.FitCurve()
	if err != nil {
		t.Fatal(err)
	}
	a, err := RegimeTable(curve)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"low congestion", "severe congestion"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("regime table missing %q:\n%s", want, a.Text)
		}
	}
}

func TestFig4OrderingAndHeadline(t *testing.T) {
	fig4, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// 2 rates x (1 streaming + 4 file counts) = 10 variants.
	if len(fig4.Variants) != 10 {
		t.Fatalf("variants = %d", len(fig4.Variants))
	}
	// At the high rate, streaming < 1 file < 10 < 144 < 1440? The paper
	// orders streaming fastest and per-frame files slowest; intermediate
	// aggregations may reorder between themselves, so assert only the
	// paper's claims: streaming fastest, 1440 slowest.
	byLabel := map[string]time.Duration{}
	for _, v := range fig4.Variants {
		byLabel[v.Label] = v.Completion
	}
	stream := byLabel["0.033s/frame streaming"]
	worst := byLabel["0.033s/frame 1440 file(s)"]
	for label, c := range byLabel {
		if strings.HasPrefix(label, "0.033s/frame") {
			if c < stream {
				t.Errorf("%s (%v) beat streaming (%v)", label, c, stream)
			}
			if c > worst {
				t.Errorf("%s (%v) exceeded 1440-file worst (%v)", label, c, worst)
			}
		}
	}

	res := quickFig2a(t)
	numbers, artifact, err := Headline(fig4, res)
	if err != nil {
		t.Fatal(err)
	}
	if numbers.MaxReductionPercent < 90 || numbers.MaxReductionPercent > 99 {
		t.Errorf("headline reduction = %v, want in the 90s", numbers.MaxReductionPercent)
	}
	if numbers.WorstInflation < 10 {
		t.Errorf("worst inflation = %v, want > 10x", numbers.WorstInflation)
	}
	if !strings.Contains(artifact.Text, "97%") {
		t.Error("headline should reference the paper claim")
	}
	if _, _, err := Headline(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestCaseStudyReproducesSection5(t *testing.T) {
	res := quickFig2a(t)
	curve, err := res.Sweep.FitCurve()
	if err != nil {
		t.Fatal(err)
	}
	study, err := CaseStudy(curve)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != 3 {
		t.Fatalf("rows = %d", len(study.Rows))
	}
	cs, lsNominal, lsReduced := study.Rows[0], study.Rows[1], study.Rows[2]

	// Coherent scattering at 2 GB/s: 64% utilization, sustained OK,
	// Tier 2 feasible with a positive analysis budget.
	if cs.Utilization < 0.63 || cs.Utilization > 0.65 {
		t.Errorf("CS utilization = %v", cs.Utilization)
	}
	if !cs.SustainedFeasible || !cs.Tier2OK {
		t.Errorf("CS feasibility: %+v", cs)
	}
	if cs.AnalysisBudgetTier2 <= 0 || cs.AnalysisBudgetTier2 >= 10*time.Second {
		t.Errorf("CS tier2 budget = %v", cs.AnalysisBudgetTier2)
	}

	// Liquid scattering at nominal 4 GB/s: 128% of the link, infeasible.
	if lsNominal.SustainedFeasible {
		t.Error("4 GB/s should exceed the 25 Gbps link")
	}

	// Reduced to 3 GB/s: 96% utilization, feasible, much tighter budget
	// than coherent scattering.
	if lsReduced.Utilization < 0.95 || lsReduced.Utilization > 0.97 {
		t.Errorf("LS reduced utilization = %v", lsReduced.Utilization)
	}
	if !lsReduced.SustainedFeasible {
		t.Error("3 GB/s should fit the link")
	}
	if lsReduced.WorstStreaming <= cs.WorstStreaming {
		t.Errorf("96%% worst (%v) must exceed 64%% worst (%v)",
			lsReduced.WorstStreaming, cs.WorstStreaming)
	}
	if lsReduced.Tier2OK && lsReduced.AnalysisBudgetTier2 >= cs.AnalysisBudgetTier2 {
		t.Errorf("96%% budget (%v) must be tighter than 64%% budget (%v)",
			lsReduced.AnalysisBudgetTier2, cs.AnalysisBudgetTier2)
	}
	if _, err := CaseStudy(nil); err != core.ErrEmptyCurve {
		t.Errorf("nil curve err = %v", err)
	}
}

func TestRunAllSuite(t *testing.T) {
	suite, err := RunAll(QuickSweep())
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := []string{"table1", "table2", "fig2a", "fig2b", "fig3", "fig4", "table3",
		"regimes", "casestudy", "headline", "ext-heatmap", "ext-variability", "ext-pipeline", "ext-gainmap",
		"ext-hopfrontier"}
	got := suite.IDs()
	if len(got) != len(wantIDs) {
		t.Fatalf("artifacts = %v", got)
	}
	for i, id := range wantIDs {
		if got[i] != id {
			t.Fatalf("artifact order: %v", got)
		}
	}
	if _, ok := suite.Get("fig4"); !ok {
		t.Error("Get(fig4) failed")
	}
	if _, ok := suite.Get("nonexistent"); ok {
		t.Error("Get(nonexistent) succeeded")
	}
	if suite.Headline.MaxReductionPercent <= 0 {
		t.Error("suite headline not populated")
	}
}

func TestRunAllPropagatesErrors(t *testing.T) {
	bad := QuickSweep()
	bad.Concurrencies = nil
	if _, err := RunAll(bad); err == nil {
		t.Fatal("bad sweep accepted")
	}
	_ = units.GB
}

func TestSweepConfigsDiffer(t *testing.T) {
	paper, quick := PaperSweep(), QuickSweep()
	if paper.Size() != 24 {
		t.Errorf("paper sweep = %d cells", paper.Size())
	}
	if quick.Size() >= paper.Size() {
		t.Errorf("quick sweep (%d) should be smaller than paper (%d)", quick.Size(), paper.Size())
	}
	if quick.Duration >= paper.Duration {
		t.Error("quick sweep should be shorter")
	}
	_ = workload.SpawnScheduled
}
